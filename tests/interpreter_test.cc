/// \file
/// Tests for the reference-scheduler module interpreter: combinational
/// propagation, sequential updates, nonblocking semantics, system tasks,
/// memories, functions, and state snapshots.

#include "sim/interpreter.h"

#include <gtest/gtest.h>

#include "verilog/parser.h"

namespace cascade::sim {
namespace {

using namespace verilog;

class Capture : public SystemTaskHandler {
  public:
    void on_display(const std::string& text) override
    {
        displays.push_back(text);
    }
    void on_write(const std::string& text) override
    {
        writes.push_back(text);
    }
    void on_finish() override { finished = true; }
    void
    on_monitor(const std::string& key, const std::string& text) override
    {
        monitor_keys.push_back(key);
        monitors.push_back(text);
    }
    uint64_t current_time() const override { return time; }

    std::vector<std::string> displays;
    std::vector<std::string> writes;
    std::vector<std::string> monitor_keys;
    std::vector<std::string> monitors;
    bool finished = false;
    uint64_t time = 0;
};

/// Parses, elaborates, and wraps a single module in an interpreter.
class Harness {
  public:
    explicit Harness(std::string_view src)
    {
        Diagnostics diags;
        SourceUnit unit = parse(src, &diags);
        EXPECT_FALSE(diags.has_errors()) << diags.str();
        EXPECT_EQ(unit.modules.size(), 1u);
        Elaborator elab(&diags);
        em_ = elab.elaborate(*unit.modules[0]);
        EXPECT_NE(em_, nullptr) << diags.str();
        interp_ = std::make_unique<ModuleInterpreter>(
            std::shared_ptr<const ElaboratedModule>(std::move(em_)),
            &capture_);
        interp_->run_initials();
        settle();
    }

    /// Runs evaluate/update rounds until quiescent (one "time step").
    void
    settle()
    {
        for (int i = 0; i < 64; ++i) {
            interp_->evaluate();
            if (!interp_->there_are_updates()) {
                return;
            }
            interp_->update();
        }
        FAIL() << "module did not settle";
    }

    void
    set(const std::string& name, uint64_t value)
    {
        const NetInfo* net = interp_->module().find_net(name);
        ASSERT_NE(net, nullptr);
        interp_->set_input(name, BitVector(net->width, value));
        settle();
    }

    /// One full clock cycle on input "clk" (up then down).
    void
    tick(const std::string& clk = "clk")
    {
        set(clk, 1);
        set(clk, 0);
    }

    uint64_t
    get(const std::string& name) const
    {
        return interp_->get(name).to_uint64();
    }

    ModuleInterpreter& interp() { return *interp_; }
    Capture& capture() { return capture_; }

  private:
    std::unique_ptr<ElaboratedModule> em_;
    std::unique_ptr<ModuleInterpreter> interp_;
    Capture capture_;
};

TEST(Interpreter, ContinuousAssignPropagates)
{
    Harness h(R"(
        module M(input wire [7:0] a, input wire [7:0] b,
                 output wire [7:0] sum, output wire [7:0] twice);
          assign sum = a + b;
          assign twice = sum << 1;
        endmodule
    )");
    EXPECT_EQ(h.get("sum"), 0u);
    h.set("a", 3);
    h.set("b", 4);
    EXPECT_EQ(h.get("sum"), 7u);
    EXPECT_EQ(h.get("twice"), 14u);
}

TEST(Interpreter, RegInitializer)
{
    Harness h("module M(output wire [7:0] o); reg [7:0] cnt = 1; "
              "assign o = cnt; endmodule");
    EXPECT_EQ(h.get("o"), 1u);
}

TEST(Interpreter, PosedgeCounter)
{
    Harness h(R"(
        module M(input wire clk, output wire [7:0] led);
          reg [7:0] cnt = 0;
          always @(posedge clk)
            cnt <= cnt + 1;
          assign led = cnt;
        endmodule
    )");
    EXPECT_EQ(h.get("led"), 0u);
    h.tick();
    EXPECT_EQ(h.get("led"), 1u);
    h.tick();
    h.tick();
    EXPECT_EQ(h.get("led"), 3u);
}

TEST(Interpreter, NegedgeTrigger)
{
    Harness h(R"(
        module M(input wire clk, output wire [3:0] o);
          reg [3:0] cnt = 0;
          always @(negedge clk)
            cnt <= cnt + 1;
          assign o = cnt;
        endmodule
    )");
    h.set("clk", 1);
    EXPECT_EQ(h.get("o"), 0u);
    h.set("clk", 0);
    EXPECT_EQ(h.get("o"), 1u);
}

TEST(Interpreter, NonblockingSwapIsSimultaneous)
{
    Harness h(R"(
        module M(input wire clk, output wire [3:0] ao,
                 output wire [3:0] bo);
          reg [3:0] a = 1, b = 2;
          always @(posedge clk) begin
            a <= b;
            b <= a;
          end
          assign ao = a;
          assign bo = b;
        endmodule
    )");
    h.tick();
    EXPECT_EQ(h.get("ao"), 2u);
    EXPECT_EQ(h.get("bo"), 1u);
    h.tick();
    EXPECT_EQ(h.get("ao"), 1u);
    EXPECT_EQ(h.get("bo"), 2u);
}

TEST(Interpreter, BlockingAssignSequences)
{
    Harness h(R"(
        module M(input wire clk, output wire [3:0] o);
          reg [3:0] a = 1, b = 0;
          always @(posedge clk) begin
            a = a + 1;
            b <= a;   // sees the already-incremented a
          end
          assign o = b;
        endmodule
    )");
    h.tick();
    EXPECT_EQ(h.get("o"), 2u);
}

TEST(Interpreter, CombAlwaysStar)
{
    Harness h(R"(
        module M(input wire [3:0] a, input wire [3:0] b,
                 output wire [3:0] o);
          reg [3:0] m;
          always @(*)
            if (a > b) m = a;
            else m = b;
          assign o = m;
        endmodule
    )");
    h.set("a", 3);
    h.set("b", 7);
    EXPECT_EQ(h.get("o"), 7u);
    h.set("a", 9);
    EXPECT_EQ(h.get("o"), 9u);
}

TEST(Interpreter, RunningExampleRol)
{
    Harness h(R"(
        module M(input wire clk, input wire [3:0] pad,
                 output wire [7:0] led);
          reg [7:0] cnt = 1;
          wire [7:0] next;
          assign next = (cnt == 8'h80) ? 1 : (cnt << 1);
          always @(posedge clk)
            if (pad == 0)
              cnt <= next;
          assign led = cnt;
        endmodule
    )");
    EXPECT_EQ(h.get("led"), 1u);
    h.tick();
    EXPECT_EQ(h.get("led"), 2u);
    for (int i = 0; i < 6; ++i) {
        h.tick();
    }
    EXPECT_EQ(h.get("led"), 0x80u);
    h.tick();
    EXPECT_EQ(h.get("led"), 1u); // wraps around
    // Pressing a button pauses the animation.
    h.set("pad", 1);
    h.tick();
    EXPECT_EQ(h.get("led"), 1u);
}

TEST(Interpreter, CaseStatement)
{
    Harness h(R"(
        module M(input wire [1:0] sel, output wire [7:0] o);
          reg [7:0] r;
          always @(*)
            case (sel)
              2'd0: r = 8'd10;
              2'd1, 2'd2: r = 8'd20;
              default: r = 8'd30;
            endcase
          assign o = r;
        endmodule
    )");
    EXPECT_EQ(h.get("o"), 10u);
    h.set("sel", 1);
    EXPECT_EQ(h.get("o"), 20u);
    h.set("sel", 2);
    EXPECT_EQ(h.get("o"), 20u);
    h.set("sel", 3);
    EXPECT_EQ(h.get("o"), 30u);
}

TEST(Interpreter, ForLoopInInitial)
{
    Harness h(R"(
        module M(output wire [15:0] o);
          reg [15:0] acc = 0;
          integer i;
          initial
            for (i = 0; i < 10; i = i + 1)
              acc = acc + i;
          assign o = acc;
        endmodule
    )");
    EXPECT_EQ(h.get("o"), 45u);
}

TEST(Interpreter, MemoryReadWrite)
{
    Harness h(R"(
        module M(input wire clk, input wire [3:0] waddr,
                 input wire [3:0] raddr, input wire [7:0] wdata,
                 input wire we, output wire [7:0] rdata);
          reg [7:0] mem [0:15];
          always @(posedge clk)
            if (we)
              mem[waddr] <= wdata;
          assign rdata = mem[raddr];
        endmodule
    )");
    h.set("we", 1);
    h.set("waddr", 5);
    h.set("wdata", 0xAB);
    h.tick();
    h.set("raddr", 5);
    EXPECT_EQ(h.get("rdata"), 0xABu);
    h.set("raddr", 6);
    EXPECT_EQ(h.get("rdata"), 0u);
}

TEST(Interpreter, BitAndRangeSelectAssignment)
{
    Harness h(R"(
        module M(input wire clk, output wire [7:0] o);
          reg [7:0] r = 0;
          always @(posedge clk) begin
            r[0] <= 1;
            r[7:4] <= 4'hA;
          end
          assign o = r;
        endmodule
    )");
    h.tick();
    EXPECT_EQ(h.get("o"), 0xA1u);
}

TEST(Interpreter, IndexedSelectAssignment)
{
    Harness h(R"(
        module M(input wire clk, input wire [1:0] i,
                 output wire [15:0] o);
          reg [15:0] r = 0;
          always @(posedge clk)
            r[i*4 +: 4] <= 4'hF;
          assign o = r;
        endmodule
    )");
    h.set("i", 2);
    h.tick();
    EXPECT_EQ(h.get("o"), 0x0F00u);
}

TEST(Interpreter, ConcatLvalue)
{
    Harness h(R"(
        module M(input wire [3:0] a, input wire [3:0] b,
                 output wire [4:0] sum);
          reg c;
          reg [3:0] s;
          always @(*)
            {c, s} = a + b;
          assign sum = {c, s};
        endmodule
    )");
    h.set("a", 9);
    h.set("b", 9);
    EXPECT_EQ(h.get("sum"), 18u);
}

TEST(Interpreter, NonZeroLsbRange)
{
    Harness h(R"(
        module M(input wire [11:4] a, output wire [3:0] hi);
          assign hi = a[11:8];
        endmodule
    )");
    h.set("a", 0xAB);
    EXPECT_EQ(h.get("hi"), 0xAu);
}

TEST(Interpreter, SignedArithmetic)
{
    Harness h(R"(
        module M(input wire signed [7:0] a, output wire neg,
                 output wire signed [7:0] half);
          assign neg = a < 0;
          assign half = a >>> 1;
        endmodule
    )");
    h.set("a", 0xF0); // -16
    EXPECT_EQ(h.get("neg"), 1u);
    EXPECT_EQ(h.get("half"), 0xF8u); // -8
    h.set("a", 16);
    EXPECT_EQ(h.get("neg"), 0u);
    EXPECT_EQ(h.get("half"), 8u);
}

TEST(Interpreter, WidthContextCarry)
{
    // a + b must be computed at 9 bits because the LHS is 9 bits wide.
    Harness h(R"(
        module M(input wire [7:0] a, input wire [7:0] b,
                 output wire [8:0] s);
          assign s = a + b;
        endmodule
    )");
    h.set("a", 0xFF);
    h.set("b", 0x01);
    EXPECT_EQ(h.get("s"), 0x100u);
}

TEST(Interpreter, FunctionCall)
{
    Harness h(R"(
        module M(input wire [7:0] x, output wire [7:0] y);
          function [7:0] rol;
            input [7:0] v;
            rol = (v == 8'h80) ? 8'h01 : (v << 1);
          endfunction
          assign y = rol(x);
        endmodule
    )");
    h.set("x", 0x40);
    EXPECT_EQ(h.get("y"), 0x80u);
    h.set("x", 0x80);
    EXPECT_EQ(h.get("y"), 0x01u);
}

TEST(Interpreter, RecursiveFunctionViaLoop)
{
    Harness h(R"(
        module M(input wire [3:0] n, output wire [15:0] fact);
          function [15:0] f;
            input [3:0] n;
            integer i;
            begin
              f = 1;
              for (i = 1; i <= n; i = i + 1)
                f = f * i;
            end
          endfunction
          assign fact = f(n);
        endmodule
    )");
    h.set("n", 5);
    EXPECT_EQ(h.get("fact"), 120u);
}

TEST(Interpreter, DisplayAndFinish)
{
    Harness h(R"(
        module M(input wire clk);
          reg [7:0] cnt = 0;
          always @(posedge clk) begin
            cnt <= cnt + 1;
            $display("cnt = %0d", cnt);
            if (cnt == 2)
              $finish;
          end
        endmodule
    )");
    h.tick();
    ASSERT_EQ(h.capture().displays.size(), 1u);
    EXPECT_EQ(h.capture().displays[0], "cnt = 0");
    h.tick();
    h.tick();
    EXPECT_TRUE(h.capture().finished);
    EXPECT_TRUE(h.interp().finished());
}

TEST(Interpreter, DisplayFormats)
{
    Harness h(R"(
        module M(input wire clk);
          reg [7:0] v = 8'hA5;
          always @(posedge clk)
            $display("%d|%0d|%h|%b|%o|%%", v, v, v, v, v);
        endmodule
    )");
    h.tick();
    ASSERT_EQ(h.capture().displays.size(), 1u);
    EXPECT_EQ(h.capture().displays[0], "165|165|a5|10100101|245|%");
}

TEST(Interpreter, DisplayWithoutFormatString)
{
    Harness h(R"(
        module M(input wire clk);
          reg [3:0] a = 5;
          reg signed [3:0] b = -2;
          always @(posedge clk) $display(a, b);
        endmodule
    )");
    h.tick();
    ASSERT_EQ(h.capture().displays.size(), 1u);
    EXPECT_EQ(h.capture().displays[0], "5 -2");
}

TEST(Interpreter, TimeSystemCall)
{
    Harness h(R"(
        module M(input wire clk, output wire [63:0] t);
          reg [63:0] r = 0;
          always @(posedge clk) r <= $time;
          assign t = r;
        endmodule
    )");
    h.capture().time = 42;
    h.tick();
    EXPECT_EQ(h.get("t"), 42u);
}

TEST(Interpreter, MonitorRegistersOnceAndFlushesOnDemand)
{
    Harness h(R"(
        module M(input wire clk);
          reg [7:0] cnt = 0;
          always @(posedge clk) begin
            cnt <= cnt + 1;
            $monitor("cnt=%0d", cnt);
          end
        endmodule
    )");
    // Executing the statement registers the monitor; it does not print.
    h.tick();
    h.tick();
    EXPECT_EQ(h.interp().monitor_count(), 1u)
        << "re-executing a $monitor must not register it again";
    EXPECT_TRUE(h.capture().monitors.empty());
    EXPECT_TRUE(h.capture().displays.empty());

    // flush_monitors emits one candidate per registered monitor, with
    // arguments sampled at the trigger site (the second posedge saw
    // cnt==1); suppression is the runtime's job.
    h.interp().flush_monitors();
    ASSERT_EQ(h.capture().monitors.size(), 1u);
    EXPECT_EQ(h.capture().monitors[0], "cnt=1");
    h.tick();
    h.interp().flush_monitors();
    ASSERT_EQ(h.capture().monitors.size(), 2u);
    EXPECT_EQ(h.capture().monitors[1], "cnt=2");
}

TEST(Interpreter, MonitorKeyIsCanonicalSourceText)
{
    Harness h(R"(
        module M(input wire clk);
          reg [7:0] v = 0;
          always @(posedge clk) $monitor("v=%0d", v);
        endmodule
    )");
    h.tick();
    h.interp().flush_monitors();
    ASSERT_EQ(h.capture().monitor_keys.size(), 1u);
    // The key is the printed statement, stripped of trailing whitespace —
    // the hardware wrapper computes the same key for the same site, which
    // is what lets the runtime splice suppression across a handoff.
    EXPECT_EQ(h.capture().monitor_keys[0], "$monitor(\"v=%0d\", v);");
}

TEST(Interpreter, TwoMonitorsFlushIndependently)
{
    Harness h(R"(
        module M(input wire clk);
          reg [7:0] a = 1;
          reg [7:0] b = 2;
          always @(posedge clk) begin
            $monitor("a=%0d", a);
            $monitor("b=%0d", b);
          end
        endmodule
    )");
    h.tick();
    EXPECT_EQ(h.interp().monitor_count(), 2u);
    h.interp().flush_monitors();
    ASSERT_EQ(h.capture().monitors.size(), 2u);
    EXPECT_EQ(h.capture().monitors[0], "a=1");
    EXPECT_EQ(h.capture().monitors[1], "b=2");
}

TEST(Interpreter, ChangedOutputsTracked)
{
    Harness h(R"(
        module M(input wire [3:0] a, output wire [3:0] o1,
                 output wire [3:0] o2);
          assign o1 = a;
          assign o2 = 4'd7;
        endmodule
    )");
    h.interp().take_changed_outputs();
    h.set("a", 3);
    auto changed = h.interp().take_changed_outputs();
    ASSERT_EQ(changed.size(), 1u);
    EXPECT_EQ(h.interp().module().nets[changed[0]].name, "o1");
    // Cleared after take.
    EXPECT_TRUE(h.interp().take_changed_outputs().empty());
}

TEST(Interpreter, StateSnapshotRoundTrip)
{
    Harness h(R"(
        module M(input wire clk, output wire [7:0] o);
          reg [7:0] cnt = 0;
          reg [7:0] mem [0:3];
          always @(posedge clk) begin
            cnt <= cnt + 1;
            mem[cnt[1:0]] <= cnt;
          end
          assign o = cnt;
        endmodule
    )");
    h.tick();
    h.tick();
    h.tick();
    StateSnapshot snap = h.interp().get_state();
    EXPECT_EQ(snap.regs.at("cnt").to_uint64(), 3u);
    EXPECT_EQ(snap.memories.at("mem")[1].to_uint64(), 1u);

    // A fresh instance restored from the snapshot continues the count.
    Harness h2(R"(
        module M(input wire clk, output wire [7:0] o);
          reg [7:0] cnt = 0;
          reg [7:0] mem [0:3];
          always @(posedge clk) begin
            cnt <= cnt + 1;
            mem[cnt[1:0]] <= cnt;
          end
          assign o = cnt;
        endmodule
    )");
    h2.interp().set_state(snap);
    h2.settle();
    EXPECT_EQ(h2.get("o"), 3u);
    h2.tick();
    EXPECT_EQ(h2.get("o"), 4u);
    EXPECT_EQ(h2.interp().get_state().memories.at("mem")[3].to_uint64(), 3u);
}

TEST(Interpreter, GatedClockFiresWhenGateOpens)
{
    Harness h(R"(
        module M(input wire clk, input wire en, output wire [3:0] o);
          wire gclk;
          assign gclk = clk & en;
          reg [3:0] cnt = 0;
          always @(posedge gclk) cnt <= cnt + 1;
          assign o = cnt;
        endmodule
    )");
    h.tick();
    EXPECT_EQ(h.get("o"), 0u); // gate closed
    h.set("en", 1);
    h.tick();
    EXPECT_EQ(h.get("o"), 1u);
}

TEST(Interpreter, CombinationalLoopDetected)
{
    Harness h(R"(
        module M(output wire o);
          wire a, b;
          assign a = ~b;
          assign b = a;
          assign o = a;
        endmodule
    )");
    // Must terminate (guard trips); value is unspecified but bounded.
    SUCCEED();
}

TEST(Interpreter, LazyEvaluationSkipsUnaffectedProcesses)
{
    Harness h(R"(
        module M(input wire [7:0] a, input wire [7:0] b,
                 output wire [7:0] x, output wire [7:0] y);
          assign x = a + 1;
          assign y = b + 1;
        endmodule
    )");
    const uint64_t base = h.interp().process_executions();
    h.set("a", 5);
    const uint64_t after = h.interp().process_executions();
    // Only the x process should have re-run.
    EXPECT_EQ(after - base, 1u);
}

TEST(Interpreter, WideDatapath)
{
    Harness h(R"(
        module M(input wire [255:0] a, input wire [255:0] b,
                 output wire [255:0] s, output wire [127:0] hi);
          assign s = a + b;
          assign hi = s[255:128];
        endmodule
    )");
    h.interp().set_input("a", BitVector::all_ones(256));
    h.settle();
    h.set("b", 1);
    EXPECT_EQ(h.get("s"), 0u);
    EXPECT_EQ(h.get("hi"), 0u);
    h.interp().set_input("a", BitVector(256, 0).bit_not().lshr(1)); // 2^255-1
    h.settle();
    EXPECT_EQ(h.interp().get("s").bit(255), true);
}

TEST(Interpreter, RepeatAndWhileLoops)
{
    Harness h(R"(
        module M(output wire [7:0] o);
          reg [7:0] acc = 0;
          reg [7:0] i = 0;
          initial begin
            repeat (5) acc = acc + 2;
            while (i < 3) begin
              acc = acc + 10;
              i = i + 1;
            end
          end
          assign o = acc;
        endmodule
    )");
    EXPECT_EQ(h.get("o"), 40u);
}

} // namespace
} // namespace cascade::sim
