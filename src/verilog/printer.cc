#include "verilog/printer.h"

#include "common/check.h"

namespace cascade::verilog {

namespace {

std::string
ind(int n)
{
    return std::string(static_cast<size_t>(n) * 2, ' ');
}

const char*
unary_op_str(UnaryOp op)
{
    switch (op) {
      case UnaryOp::Plus: return "+";
      case UnaryOp::Minus: return "-";
      case UnaryOp::LogicalNot: return "!";
      case UnaryOp::BitwiseNot: return "~";
      case UnaryOp::ReduceAnd: return "&";
      case UnaryOp::ReduceOr: return "|";
      case UnaryOp::ReduceXor: return "^";
      case UnaryOp::ReduceNand: return "~&";
      case UnaryOp::ReduceNor: return "~|";
      case UnaryOp::ReduceXnor: return "~^";
    }
    return "?";
}

const char*
binary_op_str(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Add: return "+";
      case BinaryOp::Sub: return "-";
      case BinaryOp::Mul: return "*";
      case BinaryOp::Div: return "/";
      case BinaryOp::Mod: return "%";
      case BinaryOp::Pow: return "**";
      case BinaryOp::Eq: return "==";
      case BinaryOp::Neq: return "!=";
      case BinaryOp::CaseEq: return "===";
      case BinaryOp::CaseNeq: return "!==";
      case BinaryOp::LogicalAnd: return "&&";
      case BinaryOp::LogicalOr: return "||";
      case BinaryOp::Lt: return "<";
      case BinaryOp::Leq: return "<=";
      case BinaryOp::Gt: return ">";
      case BinaryOp::Geq: return ">=";
      case BinaryOp::Shl: return "<<";
      case BinaryOp::Shr: return ">>";
      case BinaryOp::AShr: return ">>>";
      case BinaryOp::BitAnd: return "&";
      case BinaryOp::BitOr: return "|";
      case BinaryOp::BitXor: return "^";
      case BinaryOp::BitXnor: return "~^";
    }
    return "?";
}

std::string
print_range(const Range& r)
{
    if (!r.valid()) {
        return "";
    }
    return "[" + print(*r.msb) + ":" + print(*r.lsb) + "]";
}

std::string
print_escaped_string(const std::string& s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          default: out += c; break;
        }
    }
    out += '"';
    return out;
}

std::string
print_connections(const std::vector<Connection>& conns)
{
    std::string out;
    for (size_t i = 0; i < conns.size(); ++i) {
        if (i > 0) {
            out += ", ";
        }
        if (!conns[i].name.empty()) {
            out += "." + conns[i].name + "(";
            if (conns[i].expr != nullptr) {
                out += print(*conns[i].expr);
            }
            out += ")";
        } else if (conns[i].expr != nullptr) {
            out += print(*conns[i].expr);
        }
    }
    return out;
}

} // namespace

std::string
print(const Expr& expr)
{
    switch (expr.kind) {
      case ExprKind::Number: {
        const auto& e = static_cast<const NumberExpr&>(expr);
        if (!e.sized && e.is_signed && e.value.width() == 32) {
            return e.value.to_dec_string();
        }
        return std::to_string(e.value.width()) + "'" +
               (e.is_signed ? "s" : "") + "h" + e.value.to_hex_string();
      }
      case ExprKind::String: {
        const auto& e = static_cast<const StringExpr&>(expr);
        return print_escaped_string(e.text);
      }
      case ExprKind::Identifier:
        return static_cast<const IdentifierExpr&>(expr).full_name();
      case ExprKind::Unary: {
        const auto& e = static_cast<const UnaryExpr&>(expr);
        return std::string(unary_op_str(e.op)) + "(" + print(*e.operand) +
               ")";
      }
      case ExprKind::Binary: {
        const auto& e = static_cast<const BinaryExpr&>(expr);
        return "(" + print(*e.lhs) + " " + binary_op_str(e.op) + " " +
               print(*e.rhs) + ")";
      }
      case ExprKind::Ternary: {
        const auto& e = static_cast<const TernaryExpr&>(expr);
        return "(" + print(*e.cond) + " ? " + print(*e.then_expr) + " : " +
               print(*e.else_expr) + ")";
      }
      case ExprKind::Concat: {
        const auto& e = static_cast<const ConcatExpr&>(expr);
        std::string out = "{";
        for (size_t i = 0; i < e.elements.size(); ++i) {
            if (i > 0) {
                out += ", ";
            }
            out += print(*e.elements[i]);
        }
        return out + "}";
      }
      case ExprKind::Replicate: {
        const auto& e = static_cast<const ReplicateExpr&>(expr);
        return "{" + print(*e.count) + "{" + print(*e.body) + "}}";
      }
      case ExprKind::Index: {
        const auto& e = static_cast<const IndexExpr&>(expr);
        return print(*e.base) + "[" + print(*e.index) + "]";
      }
      case ExprKind::RangeSelect: {
        const auto& e = static_cast<const RangeSelectExpr&>(expr);
        return print(*e.base) + "[" + print(*e.msb) + ":" + print(*e.lsb) +
               "]";
      }
      case ExprKind::IndexedSelect: {
        const auto& e = static_cast<const IndexedSelectExpr&>(expr);
        return print(*e.base) + "[" + print(*e.offset) +
               (e.up ? " +: " : " -: ") + print(*e.width) + "]";
      }
      case ExprKind::Call: {
        const auto& e = static_cast<const CallExpr&>(expr);
        std::string out = e.callee + "(";
        for (size_t i = 0; i < e.args.size(); ++i) {
            if (i > 0) {
                out += ", ";
            }
            out += print(*e.args[i]);
        }
        return out + ")";
      }
      case ExprKind::SystemCall: {
        const auto& e = static_cast<const SystemCallExpr&>(expr);
        std::string out = e.callee;
        if (!e.args.empty()) {
            out += "(";
            for (size_t i = 0; i < e.args.size(); ++i) {
                if (i > 0) {
                    out += ", ";
                }
                out += print(*e.args[i]);
            }
            out += ")";
        }
        return out;
      }
    }
    CASCADE_UNREACHABLE();
}

std::string
print(const Stmt& stmt, int indent)
{
    const std::string pad = ind(indent);
    switch (stmt.kind) {
      case StmtKind::Block: {
        const auto& s = static_cast<const BlockStmt&>(stmt);
        std::string out = pad + "begin\n";
        for (const auto& sub : s.stmts) {
            out += print(*sub, indent + 1);
        }
        out += pad + "end\n";
        return out;
      }
      case StmtKind::BlockingAssign: {
        const auto& s = static_cast<const BlockingAssignStmt&>(stmt);
        return pad + print(*s.lhs) + " = " + print(*s.rhs) + ";\n";
      }
      case StmtKind::NonblockingAssign: {
        const auto& s = static_cast<const NonblockingAssignStmt&>(stmt);
        return pad + print(*s.lhs) + " <= " + print(*s.rhs) + ";\n";
      }
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        std::string out = pad + "if (" + print(*s.cond) + ")\n";
        out += print(*s.then_stmt, indent + 1);
        if (s.else_stmt != nullptr) {
            out += pad + "else\n";
            out += print(*s.else_stmt, indent + 1);
        }
        return out;
      }
      case StmtKind::Case: {
        const auto& s = static_cast<const CaseStmt&>(stmt);
        const char* kw = s.case_kind == CaseKind::Case
                             ? "case"
                             : (s.case_kind == CaseKind::Casez ? "casez"
                                                               : "casex");
        std::string out =
            pad + kw + " (" + print(*s.subject) + ")\n";
        for (const auto& item : s.items) {
            if (item.labels.empty()) {
                out += ind(indent + 1) + "default:\n";
            } else {
                std::string labels;
                for (size_t i = 0; i < item.labels.size(); ++i) {
                    if (i > 0) {
                        labels += ", ";
                    }
                    labels += print(*item.labels[i]);
                }
                out += ind(indent + 1) + labels + ":\n";
            }
            out += print(*item.stmt, indent + 2);
        }
        out += pad + "endcase\n";
        return out;
      }
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        // init and step are assignments; print them without trailing ;\n.
        std::string init = print(*s.init, 0);
        init = init.substr(0, init.find(";"));
        std::string step = print(*s.step, 0);
        step = step.substr(0, step.find(";"));
        std::string out = pad + "for (" + init + "; " + print(*s.cond) +
                          "; " + step + ")\n";
        out += print(*s.body, indent + 1);
        return out;
      }
      case StmtKind::While: {
        const auto& s = static_cast<const WhileStmt&>(stmt);
        return pad + "while (" + print(*s.cond) + ")\n" +
               print(*s.body, indent + 1);
      }
      case StmtKind::Repeat: {
        const auto& s = static_cast<const RepeatStmt&>(stmt);
        return pad + "repeat (" + print(*s.count) + ")\n" +
               print(*s.body, indent + 1);
      }
      case StmtKind::Forever: {
        const auto& s = static_cast<const ForeverStmt&>(stmt);
        return pad + "forever\n" + print(*s.body, indent + 1);
      }
      case StmtKind::SystemTask: {
        const auto& s = static_cast<const SystemTaskStmt&>(stmt);
        std::string out = pad + s.name;
        if (!s.args.empty()) {
            out += "(";
            for (size_t i = 0; i < s.args.size(); ++i) {
                if (i > 0) {
                    out += ", ";
                }
                out += print(*s.args[i]);
            }
            out += ")";
        }
        return out + ";\n";
      }
      case StmtKind::Null:
        return pad + ";\n";
    }
    CASCADE_UNREACHABLE();
}

std::string
print(const ModuleItem& item, int indent)
{
    const std::string pad = ind(indent);
    switch (item.kind) {
      case ItemKind::NetDecl: {
        const auto& d = static_cast<const NetDecl&>(item);
        std::string out = pad;
        out += d.is_reg ? "reg" : "wire";
        if (d.is_signed) {
            out += " signed";
        }
        if (d.range.valid()) {
            out += " " + print_range(d.range);
        }
        out += " ";
        for (size_t i = 0; i < d.decls.size(); ++i) {
            if (i > 0) {
                out += ", ";
            }
            out += d.decls[i].name;
            if (d.decls[i].array_dim.valid()) {
                out += " " + print_range(d.decls[i].array_dim);
            }
            if (d.decls[i].init != nullptr) {
                out += " = " + print(*d.decls[i].init);
            }
        }
        return out + ";\n";
      }
      case ItemKind::ParamDecl: {
        const auto& d = static_cast<const ParamDecl&>(item);
        std::string out = pad;
        out += d.local ? "localparam" : "parameter";
        if (d.is_signed) {
            out += " signed";
        }
        if (d.range.valid()) {
            out += " " + print_range(d.range);
        }
        out += " " + d.name + " = " + print(*d.value);
        return out + ";\n";
      }
      case ItemKind::ContinuousAssign: {
        const auto& a = static_cast<const ContinuousAssign&>(item);
        return pad + "assign " + print(*a.lhs) + " = " + print(*a.rhs) +
               ";\n";
      }
      case ItemKind::Always: {
        const auto& a = static_cast<const AlwaysBlock&>(item);
        std::string out = pad + "always @(";
        if (a.star) {
            out += "*";
        } else {
            for (size_t i = 0; i < a.sensitivity.size(); ++i) {
                if (i > 0) {
                    out += " or ";
                }
                const auto& s = a.sensitivity[i];
                if (s.edge == EdgeKind::Pos) {
                    out += "posedge ";
                } else if (s.edge == EdgeKind::Neg) {
                    out += "negedge ";
                }
                out += print(*s.signal);
            }
        }
        out += ")\n";
        out += print(*a.body, indent + 1);
        return out;
      }
      case ItemKind::Initial: {
        const auto& i = static_cast<const InitialBlock&>(item);
        return pad + "initial\n" + print(*i.body, indent + 1);
      }
      case ItemKind::Instantiation: {
        const auto& inst = static_cast<const Instantiation&>(item);
        std::string out = pad + inst.module_name;
        if (!inst.parameters.empty()) {
            out += "#(" + print_connections(inst.parameters) + ")";
        }
        out += " " + inst.instance_name + "(";
        out += print_connections(inst.ports);
        return out + ");\n";
      }
      case ItemKind::FunctionDecl: {
        const auto& f = static_cast<const FunctionDecl&>(item);
        std::string out = pad + "function ";
        if (f.ret_signed) {
            out += "signed ";
        }
        if (f.ret_range.valid()) {
            out += print_range(f.ret_range) + " ";
        }
        out += f.name + ";\n";
        for (size_t i = 0; i < f.decls.size(); ++i) {
            if (f.decl_is_input[i]) {
                const auto& d = static_cast<const NetDecl&>(*f.decls[i]);
                std::string line = ind(indent + 1) + "input";
                if (d.is_signed) {
                    line += " signed";
                }
                if (d.range.valid()) {
                    line += " " + print_range(d.range);
                }
                line += " ";
                for (size_t j = 0; j < d.decls.size(); ++j) {
                    if (j > 0) {
                        line += ", ";
                    }
                    line += d.decls[j].name;
                }
                out += line + ";\n";
            } else {
                out += print(*f.decls[i], indent + 1);
            }
        }
        out += print(*f.body, indent + 1);
        out += pad + "endfunction\n";
        return out;
      }
    }
    CASCADE_UNREACHABLE();
}

std::string
print(const ModuleDecl& module)
{
    std::string out = "module " + module.name;
    if (!module.header_params.empty()) {
        out += "#(";
        for (size_t i = 0; i < module.header_params.size(); ++i) {
            if (i > 0) {
                out += ", ";
            }
            const auto& p =
                static_cast<const ParamDecl&>(*module.header_params[i]);
            out += "parameter ";
            if (p.range.valid()) {
                out += print_range(p.range) + " ";
            }
            out += p.name + " = " + print(*p.value);
        }
        out += ")";
    }
    out += "(";
    for (size_t i = 0; i < module.ports.size(); ++i) {
        if (i > 0) {
            out += ", ";
        }
        const Port& p = module.ports[i];
        switch (p.dir) {
          case PortDir::Input: out += "input "; break;
          case PortDir::Output: out += "output "; break;
          case PortDir::Inout: out += "inout "; break;
        }
        out += p.is_reg ? "reg " : "wire ";
        if (p.is_signed) {
            out += "signed ";
        }
        if (p.range.valid()) {
            out += print_range(p.range) + " ";
        }
        out += p.name;
    }
    out += ");\n";
    for (const auto& item : module.items) {
        out += print(*item, 1);
    }
    out += "endmodule\n";
    return out;
}

std::string
print(const SourceUnit& unit)
{
    std::string out;
    for (const auto& m : unit.modules) {
        out += print(*m);
        out += "\n";
    }
    for (const auto& item : unit.root_items) {
        out += print(*item, 0);
    }
    return out;
}

} // namespace cascade::verilog
