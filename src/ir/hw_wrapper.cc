#include "ir/hw_wrapper.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "ir/rewrite.h"
#include "verilog/printer.h"

namespace cascade::ir {

using namespace verilog;

const VarSlot*
WrapperMap::find(const std::string& name) const
{
    for (const auto& v : vars) {
        if (v.name == name) {
            return &v;
        }
    }
    return nullptr;
}

namespace {

// --- Small AST construction helpers ---------------------------------------

ExprPtr
id(const std::string& name)
{
    return std::make_unique<IdentifierExpr>(std::vector<std::string>{name});
}

ExprPtr
num(uint32_t width, uint64_t value)
{
    return std::make_unique<NumberExpr>(BitVector(width, value), true,
                                        false);
}

ExprPtr
binop(BinaryOp op, ExprPtr l, ExprPtr r)
{
    return std::make_unique<BinaryExpr>(op, std::move(l), std::move(r));
}

ExprPtr
unop(UnaryOp op, ExprPtr e)
{
    return std::make_unique<UnaryExpr>(op, std::move(e));
}

ExprPtr
ternary(ExprPtr c, ExprPtr t, ExprPtr e)
{
    return std::make_unique<TernaryExpr>(std::move(c), std::move(t),
                                         std::move(e));
}

/// var[lo*32 +: 32] — the j'th MMIO word of a value.
ExprPtr
word_of(const std::string& name, uint32_t j)
{
    return std::make_unique<IndexedSelectExpr>(id(name), num(32, j * 32),
                                               num(32, 32), /*up=*/true);
}

StmtPtr
nb_assign(ExprPtr lhs, ExprPtr rhs)
{
    return std::make_unique<NonblockingAssignStmt>(std::move(lhs),
                                                   std::move(rhs));
}

StmtPtr
if_stmt(ExprPtr cond, StmtPtr then_stmt, StmtPtr else_stmt = nullptr)
{
    return std::make_unique<IfStmt>(std::move(cond), std::move(then_stmt),
                                    std::move(else_stmt));
}

StmtPtr
block(std::vector<StmtPtr> stmts)
{
    return std::make_unique<BlockStmt>(std::move(stmts));
}

/// reg [width-1:0] name = init;
ItemPtr
reg_decl(const std::string& name, uint32_t width, uint64_t init)
{
    auto nd = std::make_unique<NetDecl>();
    nd->is_reg = true;
    if (width > 1) {
        nd->range.msb = num(32, width - 1);
        nd->range.lsb = num(32, 0);
    }
    NetDeclarator d;
    d.name = name;
    d.init = std::make_unique<NumberExpr>(BitVector(width, init), true,
                                          false);
    nd->decls.push_back(std::move(d));
    return nd;
}

/// wire [width-1:0] name;
ItemPtr
wire_decl(const std::string& name, uint32_t width)
{
    auto nd = std::make_unique<NetDecl>();
    if (width > 1) {
        nd->range.msb = num(32, width - 1);
        nd->range.lsb = num(32, 0);
    }
    NetDeclarator d;
    d.name = name;
    nd->decls.push_back(std::move(d));
    return nd;
}

Port
make_port(const std::string& name, PortDir dir, uint32_t width,
          bool is_reg = false)
{
    Port p;
    p.name = name;
    p.dir = dir;
    p.is_reg = is_reg;
    if (width > 1) {
        p.range.msb = num(32, width - 1);
        p.range.lsb = num(32, 0);
    }
    return p;
}

// --- The rewriter ----------------------------------------------------------

class WrapperBuilder {
  public:
    WrapperBuilder(const ElaboratedModule& em,
                   const std::string& clock_input, WrapperMap* map,
                   Diagnostics* diags)
        : em_(em), clock_input_(clock_input), map_(map), diags_(diags)
    {}

    std::unique_ptr<ModuleDecl>
    run()
    {
        scan_blocking_targets();
        allocate_slots();

        auto out = std::make_unique<ModuleDecl>();
        out->name = em_.name + "_axi";
        out->ports.push_back(make_port("CLK", PortDir::Input, 1));
        out->ports.push_back(make_port("RW", PortDir::Input, 1));
        out->ports.push_back(make_port("ADDR", PortDir::Input, 32));
        out->ports.push_back(make_port("IN", PortDir::Input, 32));
        out->ports.push_back(make_port("OUT", PortDir::Output, 32,
                                       /*is_reg=*/true));
        out->ports.push_back(make_port("WAIT", PortDir::Output, 1));

        // Frozen parameters.
        for (const auto& [name, value] : em_.params) {
            auto lp = std::make_unique<ParamDecl>();
            lp->local = true;
            lp->name = name;
            lp->is_signed = em_.param_signed.at(name);
            lp->value =
                std::make_unique<NumberExpr>(value, true, false);
            out->items.push_back(std::move(lp));
        }

        // Former ports become internal nets; other declarations carry over.
        for (const NetInfo& net : em_.nets) {
            if (net.is_port) {
                if (net.dir == PortDir::Input) {
                    out->items.push_back(reg_decl(net.name, net.width, 0));
                } else if (net.is_reg) {
                    out->items.push_back(reg_decl(net.name, net.width, 0));
                } else {
                    out->items.push_back(wire_decl(net.name, net.width));
                }
            }
        }

        // Rewrite the original items.
        for (const auto& item : em_.decl->items) {
            switch (item->kind) {
              case ItemKind::NetDecl:
                out->items.push_back(item->clone());
                break;
              case ItemKind::ParamDecl:
                break; // frozen above
              case ItemKind::ContinuousAssign:
              case ItemKind::FunctionDecl: {
                ItemPtr clone = item->clone();
                rewrite_time_refs(clone.get());
                out->items.push_back(std::move(clone));
                break;
              }
              case ItemKind::Always: {
                const auto& ab = static_cast<const AlwaysBlock&>(*item);
                bool has_edge = false;
                for (const auto& s : ab.sensitivity) {
                    if (s.edge != EdgeKind::Level) {
                        has_edge = true;
                    }
                }
                if (!has_edge) {
                    if (contains_task_or_nb(*ab.body)) {
                        diags_->error(ab.loc,
                                      "system tasks and nonblocking "
                                      "assignments in combinational blocks "
                                      "cannot be compiled to hardware");
                        ok_ = false;
                    }
                    ItemPtr clone = item->clone();
                    rewrite_time_refs(clone.get());
                    out->items.push_back(std::move(clone));
                    break;
                }
                auto clone_item = item->clone();
                auto* seq = static_cast<AlwaysBlock*>(clone_item.get());
                // Task rewriting must see the original $time references:
                // monitor-site keys are prints of the pre-rewrite statement
                // (they must match the software interpreter's keys). The
                // time rewrite afterwards covers the generated argument
                // saves too.
                seq->body = rewrite_seq(std::move(seq->body));
                rewrite_time_refs(clone_item.get());
                out->items.push_back(std::move(clone_item));
                break;
              }
              case ItemKind::Initial:
                // Initial blocks run in software before the handoff; their
                // effects arrive via set_state.
                break;
              case ItemKind::Instantiation:
                diags_->error(item->loc,
                              "subprogram still contains an instantiation; "
                              "split before wrapping");
                ok_ = false;
                break;
            }
        }
        if (!ok_) {
            return nullptr;
        }

        emit_generated_decls(out.get());
        emit_control_wires(out.get());
        emit_mmio_block(out.get());
        emit_out_mux(out.get());

        // WAIT while the open-loop controller holds control.
        out->items.push_back(std::make_unique<ContinuousAssign>(
            id("WAIT"),
            binop(BinaryOp::Neq, id("_oloop"), num(32, 0))));

        return out;
    }

  private:
    struct UpdateSite {
        ExprPtr lvalue;        ///< clone with dynamic indices replaced
        std::string value_reg; ///< shadow value register
        uint32_t width = 1;
    };

    /// Regs assigned with blocking assignments anywhere in user always
    /// blocks (cannot be MMIO-writable: the user logic drives them).
    void
    scan_blocking_targets()
    {
        for (const auto& item : em_.decl->items) {
            const Stmt* body = nullptr;
            if (item->kind == ItemKind::Always) {
                body = static_cast<const AlwaysBlock&>(*item).body.get();
            } else if (item->kind == ItemKind::Initial) {
                continue;
            }
            if (body == nullptr) {
                continue;
            }
            scan_blocking(*body);
        }
    }

    void
    scan_blocking(const Stmt& stmt)
    {
        switch (stmt.kind) {
          case StmtKind::Block:
            for (const auto& s :
                 static_cast<const BlockStmt&>(stmt).stmts) {
                scan_blocking(*s);
            }
            return;
          case StmtKind::BlockingAssign: {
            const Expr* e =
                static_cast<const BlockingAssignStmt&>(stmt).lhs.get();
            record_target(e);
            return;
          }
          case StmtKind::If: {
            const auto& s = static_cast<const IfStmt&>(stmt);
            scan_blocking(*s.then_stmt);
            if (s.else_stmt != nullptr) {
                scan_blocking(*s.else_stmt);
            }
            return;
          }
          case StmtKind::Case:
            for (const auto& item :
                 static_cast<const CaseStmt&>(stmt).items) {
                scan_blocking(*item.stmt);
            }
            return;
          case StmtKind::For: {
            const auto& s = static_cast<const ForStmt&>(stmt);
            scan_blocking(*s.init);
            scan_blocking(*s.step);
            scan_blocking(*s.body);
            return;
          }
          case StmtKind::While:
            scan_blocking(*static_cast<const WhileStmt&>(stmt).body);
            return;
          case StmtKind::Repeat:
            scan_blocking(*static_cast<const RepeatStmt&>(stmt).body);
            return;
          default:
            return;
        }
    }

    void
    record_target(const Expr* e)
    {
        while (e != nullptr) {
            if (e->kind == ExprKind::Identifier) {
                const auto& idx = static_cast<const IdentifierExpr&>(*e);
                if (idx.simple()) {
                    blocking_targets_.insert(idx.path[0]);
                }
                return;
            }
            if (e->kind == ExprKind::Index) {
                e = static_cast<const IndexExpr&>(*e).base.get();
            } else if (e->kind == ExprKind::RangeSelect) {
                e = static_cast<const RangeSelectExpr&>(*e).base.get();
            } else if (e->kind == ExprKind::IndexedSelect) {
                e = static_cast<const IndexedSelectExpr&>(*e).base.get();
            } else if (e->kind == ExprKind::Concat) {
                for (const auto& el :
                     static_cast<const ConcatExpr&>(*e).elements) {
                    record_target(el.get());
                }
                return;
            } else {
                return;
            }
        }
    }

    void
    allocate_slots()
    {
        auto add = [this](const NetInfo& net, bool writable) {
            VarSlot slot;
            slot.name = net.name;
            slot.width = net.width;
            slot.words = (net.width + 31) / 32;
            slot.elems = net.array_size;
            slot.writable = writable;
            slot.is_signed = net.is_signed;
            slot.base = next_addr_;
            next_addr_ += slot.words * std::max(1u, slot.elems);
            map_->vars.push_back(slot);
        };
        for (const NetInfo& net : em_.nets) {
            if (net.is_port && net.dir == PortDir::Input) {
                add(net, true);
            }
        }
        for (const NetInfo& net : em_.nets) {
            if (!net.is_port && net.is_reg) {
                add(net, blocking_targets_.count(net.name) == 0);
            }
        }
        for (const NetInfo& net : em_.nets) {
            if (net.is_port && net.dir == PortDir::Output) {
                add(net, false);
            }
        }
        map_->ctrl.latch = kCtrlBase + 0;
        map_->ctrl.clear = kCtrlBase + 1;
        map_->ctrl.oloop = kCtrlBase + 2;
        map_->ctrl.updates = kCtrlBase + 3;
        map_->ctrl.tasks = kCtrlBase + 4;
        map_->ctrl.itrs = kCtrlBase + 5;
        map_->ctrl.vtime = kCtrlBase + 6; // two words
        map_->clock_input = clock_input_;
    }

    bool
    contains_task_or_nb(const Stmt& stmt) const
    {
        bool found = false;
        std::function<void(const Stmt&)> walk = [&](const Stmt& s) {
            if (s.kind == StmtKind::SystemTask ||
                s.kind == StmtKind::NonblockingAssign) {
                found = true;
                return;
            }
            switch (s.kind) {
              case StmtKind::Block:
                for (const auto& sub :
                     static_cast<const BlockStmt&>(s).stmts) {
                    walk(*sub);
                }
                return;
              case StmtKind::If: {
                const auto& i = static_cast<const IfStmt&>(s);
                walk(*i.then_stmt);
                if (i.else_stmt != nullptr) {
                    walk(*i.else_stmt);
                }
                return;
              }
              case StmtKind::Case:
                for (const auto& item :
                     static_cast<const CaseStmt&>(s).items) {
                    walk(*item.stmt);
                }
                return;
              case StmtKind::For:
                walk(*static_cast<const ForStmt&>(s).body);
                return;
              case StmtKind::While:
                walk(*static_cast<const WhileStmt&>(s).body);
                return;
              case StmtKind::Repeat:
                walk(*static_cast<const RepeatStmt&>(s).body);
                return;
              default:
                return;
            }
        };
        walk(stmt);
        return found;
    }

    /// Replaces $time with the hardware virtual-time counter.
    void
    rewrite_time_refs(ModuleItem* item)
    {
        for_each_expr(item, [](Expr* e) {
            if (e->kind == ExprKind::SystemCall) {
                auto* s = static_cast<SystemCallExpr*>(e);
                if (s->callee == "$time") {
                    // Morph the node in place into $unsigned(_vtime): same
                    // width/sign behavior as reading a 64-bit counter.
                    s->callee = "$unsigned";
                    s->args.clear();
                    s->args.push_back(id("_vtime"));
                }
            }
        });
    }

    /// Rewrites one edge-triggered statement tree: nonblocking assignments
    /// are redirected to shadows, system tasks to argument saves + mask
    /// toggles.
    StmtPtr
    rewrite_seq(StmtPtr stmt)
    {
        switch (stmt->kind) {
          case StmtKind::Block: {
            auto* b = static_cast<BlockStmt*>(stmt.get());
            for (auto& s : b->stmts) {
                s = rewrite_seq(std::move(s));
            }
            return stmt;
          }
          case StmtKind::NonblockingAssign: {
            auto* a = static_cast<NonblockingAssignStmt*>(stmt.get());
            return rewrite_nb_site(std::move(a->lhs), std::move(a->rhs));
          }
          case StmtKind::If: {
            auto* s = static_cast<IfStmt*>(stmt.get());
            s->then_stmt = rewrite_seq(std::move(s->then_stmt));
            if (s->else_stmt != nullptr) {
                s->else_stmt = rewrite_seq(std::move(s->else_stmt));
            }
            return stmt;
          }
          case StmtKind::Case: {
            auto* s = static_cast<CaseStmt*>(stmt.get());
            for (auto& item : s->items) {
                item.stmt = rewrite_seq(std::move(item.stmt));
            }
            return stmt;
          }
          case StmtKind::For: {
            auto* s = static_cast<ForStmt*>(stmt.get());
            s->body = rewrite_seq(std::move(s->body));
            return stmt;
          }
          case StmtKind::While: {
            auto* s = static_cast<WhileStmt*>(stmt.get());
            s->body = rewrite_seq(std::move(s->body));
            return stmt;
          }
          case StmtKind::Repeat: {
            auto* s = static_cast<RepeatStmt*>(stmt.get());
            s->body = rewrite_seq(std::move(s->body));
            return stmt;
          }
          case StmtKind::SystemTask: {
            auto* s = static_cast<SystemTaskStmt*>(stmt.get());
            return rewrite_task_site(*s);
          }
          default:
            return stmt;
        }
    }

    /// One nonblocking site: "lhs <= rhs" becomes shadow-value and
    /// shadow-index captures plus a mask toggle; the commit happens at
    /// <LATCH> time in the MMIO block.
    StmtPtr
    rewrite_nb_site(ExprPtr lhs, ExprPtr rhs)
    {
        const uint32_t k = static_cast<uint32_t>(update_sites_.size());
        ExprTyper typer(em_);
        UpdateSite site;
        site.width = typer.self_width(*lhs);
        site.value_reg = "_nv" + std::to_string(k);

        std::vector<StmtPtr> stmts;
        // Replace dynamic index expressions in the lvalue clone with shadow
        // index registers, capturing each.
        uint32_t index_count = 0;
        site.lvalue = capture_lvalue(*lhs, k, &index_count, &stmts);
        stmts.push_back(nb_assign(id(site.value_reg), std::move(rhs)));
        stmts.push_back(nb_assign(
            id("_num" + std::to_string(k)),
            unop(UnaryOp::BitwiseNot, id("_um" + std::to_string(k)))));
        update_sites_.push_back(std::move(site));
        return block(std::move(stmts));
    }

    /// Clones an lvalue, replacing every dynamic index with a fresh shadow
    /// register (and emitting the capture assignment).
    ExprPtr
    capture_lvalue(const Expr& lhs, uint32_t site, uint32_t* index_count,
                   std::vector<StmtPtr>* stmts)
    {
        switch (lhs.kind) {
          case ExprKind::Identifier:
            return lhs.clone();
          case ExprKind::Index: {
            const auto& ix = static_cast<const IndexExpr&>(lhs);
            const std::string reg = "_nx" + std::to_string(site) + "_" +
                                    std::to_string((*index_count)++);
            index_regs_.push_back(reg);
            stmts->push_back(nb_assign(id(reg), ix.index->clone()));
            return std::make_unique<IndexExpr>(
                capture_lvalue(*ix.base, site, index_count, stmts),
                id(reg));
          }
          case ExprKind::IndexedSelect: {
            const auto& s = static_cast<const IndexedSelectExpr&>(lhs);
            const std::string reg = "_nx" + std::to_string(site) + "_" +
                                    std::to_string((*index_count)++);
            index_regs_.push_back(reg);
            stmts->push_back(nb_assign(id(reg), s.offset->clone()));
            return std::make_unique<IndexedSelectExpr>(
                capture_lvalue(*s.base, site, index_count, stmts), id(reg),
                s.width->clone(), s.up);
          }
          case ExprKind::RangeSelect: {
            const auto& r = static_cast<const RangeSelectExpr&>(lhs);
            return std::make_unique<RangeSelectExpr>(
                capture_lvalue(*r.base, site, index_count, stmts),
                r.msb->clone(), r.lsb->clone());
          }
          case ExprKind::Concat: {
            const auto& c = static_cast<const ConcatExpr&>(lhs);
            std::vector<ExprPtr> elements;
            for (const auto& e : c.elements) {
                elements.push_back(
                    capture_lvalue(*e, site, index_count, stmts));
            }
            return std::make_unique<ConcatExpr>(std::move(elements));
          }
          default:
            ok_ = false;
            diags_->error(lhs.loc, "unsupported assignment target for "
                                   "hardware compilation");
            return lhs.clone();
        }
    }

    /// One system-task site: save argument values, toggle the task mask.
    /// Monitor sites additionally gate the whole save/toggle on "any
    /// argument differs from its saved copy, or never fired" so a monitor
    /// raises at most one task readback per value change instead of one
    /// per clock edge (which would also abort every open-loop batch).
    StmtPtr
    rewrite_task_site(const SystemTaskStmt& task)
    {
        if (task.name == "$dumpfile" || task.name == "$dumpvars" ||
            task.name == "$dumpoff" || task.name == "$dumpon") {
            // Waveform dump control is runtime-owned and unsynthesizable
            // in a way the wrapper cannot absorb: the subprogram stays in
            // software.
            diags_->error(task.loc,
                          "waveform dump tasks cannot be compiled to "
                          "hardware; subprogram stays software-resident");
            ok_ = false;
            return task.clone();
        }
        const uint32_t k = static_cast<uint32_t>(map_->tasks.size());
        TaskSite site;
        if (task.name == "$finish") {
            site.kind = TaskKind::Finish;
        } else if (task.name == "$write") {
            site.kind = TaskKind::Write;
        } else if (task.name == "$monitor") {
            site.kind = TaskKind::Monitor;
            site.key = print(task);
            // Strip the trailing newline/indentation the statement printer
            // appends, if any, so keys match the interpreter's.
            while (!site.key.empty() &&
                   (site.key.back() == '\n' || site.key.back() == ' ')) {
                site.key.pop_back();
            }
        } else {
            site.kind = TaskKind::Display;
        }

        std::vector<StmtPtr> stmts;
        std::vector<ExprPtr> change_terms;
        ExprTyper typer(em_);
        size_t value_index = 0;
        for (size_t i = 0; i < task.args.size(); ++i) {
            const Expr& arg = *task.args[i];
            if (arg.kind == ExprKind::String) {
                if (i == 0) {
                    site.has_format = true;
                    site.format =
                        static_cast<const StringExpr&>(arg).text;
                }
                continue;
            }
            const uint32_t width = std::max(1u, typer.self_width(arg));
            const std::string reg = "_ta" + std::to_string(k) + "_" +
                                    std::to_string(value_index++);
            // Argument-save registers are readable MMIO slots.
            VarSlot slot;
            slot.name = reg;
            slot.width = width;
            slot.words = (width + 31) / 32;
            slot.base = next_addr_;
            slot.is_signed = typer.is_signed(arg);
            next_addr_ += slot.words;
            site.arg_slots.push_back(
                static_cast<uint32_t>(map_->vars.size()));
            map_->vars.push_back(slot);
            arg_regs_.emplace_back(reg, width);
            if (site.kind == TaskKind::Monitor) {
                change_terms.push_back(
                    binop(BinaryOp::Neq, id(reg), arg.clone()));
            }
            stmts.push_back(nb_assign(id(reg), arg.clone()));
        }
        stmts.push_back(nb_assign(
            id("_ntm" + std::to_string(k)),
            unop(UnaryOp::BitwiseNot, id("_tm" + std::to_string(k)))));
        const bool is_monitor = site.kind == TaskKind::Monitor;
        map_->tasks.push_back(std::move(site));
        if (!is_monitor) {
            return block(std::move(stmts));
        }
        const std::string fired = "_mf" + std::to_string(k);
        monitor_fired_regs_.push_back(fired);
        stmts.push_back(nb_assign(id(fired), num(1, 1)));
        // Fire when never fired before (covers the first trigger after an
        // engine handoff too: the runtime's text compare suppresses a
        // duplicate) or when any saved argument would change.
        ExprPtr fire = binop(BinaryOp::Eq, id(fired), num(1, 0));
        for (auto& term : change_terms) {
            fire = binop(BinaryOp::LogicalOr, std::move(fire),
                         std::move(term));
        }
        return if_stmt(std::move(fire), block(std::move(stmts)));
    }

    void
    emit_generated_decls(ModuleDecl* out)
    {
        for (size_t k = 0; k < update_sites_.size(); ++k) {
            out->items.push_back(
                reg_decl(update_sites_[k].value_reg,
                         update_sites_[k].width, 0));
            out->items.push_back(
                reg_decl("_um" + std::to_string(k), 1, 0));
            out->items.push_back(
                reg_decl("_num" + std::to_string(k), 1, 0));
        }
        for (const auto& reg : index_regs_) {
            out->items.push_back(reg_decl(reg, 32, 0));
        }
        for (size_t k = 0; k < map_->tasks.size(); ++k) {
            out->items.push_back(
                reg_decl("_tm" + std::to_string(k), 1, 0));
            out->items.push_back(
                reg_decl("_ntm" + std::to_string(k), 1, 0));
        }
        for (const auto& [name, width] : arg_regs_) {
            out->items.push_back(reg_decl(name, width, 0));
        }
        for (const auto& name : monitor_fired_regs_) {
            out->items.push_back(reg_decl(name, 1, 0));
        }
        out->items.push_back(reg_decl("_oloop", 32, 0));
        out->items.push_back(reg_decl("_itrs", 32, 0));
        out->items.push_back(reg_decl("_vtime", 64, 0));
    }

    /// OR chain over per-site mask XORs (constant 0 when there are none).
    ExprPtr
    mask_or(const std::string& a_prefix, const std::string& b_prefix,
            size_t count)
    {
        if (count == 0) {
            return num(1, 0);
        }
        ExprPtr acc;
        for (size_t k = 0; k < count; ++k) {
            ExprPtr x = binop(BinaryOp::BitXor,
                              id(a_prefix + std::to_string(k)),
                              id(b_prefix + std::to_string(k)));
            acc = acc == nullptr
                      ? std::move(x)
                      : binop(BinaryOp::BitOr, std::move(acc), std::move(x));
        }
        return acc;
    }

    ExprPtr
    addr_is(uint32_t addr)
    {
        return binop(BinaryOp::Eq, id("ADDR"), num(32, addr));
    }

    ExprPtr
    write_to(uint32_t addr)
    {
        return binop(BinaryOp::LogicalAnd, id("RW"), addr_is(addr));
    }

    void
    emit_control_wires(ModuleDecl* out)
    {
        auto assign_wire = [out](const std::string& name, uint32_t width,
                                 ExprPtr rhs) {
            out->items.push_back(wire_decl(name, width));
            out->items.push_back(std::make_unique<ContinuousAssign>(
                id(name), std::move(rhs)));
        };
        assign_wire("_updates", 1,
                    mask_or("_um", "_num", update_sites_.size()));
        assign_wire("_tasks", 1,
                    mask_or("_tm", "_ntm", map_->tasks.size()));
        assign_wire("_w_latch", 1, write_to(map_->ctrl.latch));
        assign_wire("_w_clear", 1, write_to(map_->ctrl.clear));
        assign_wire("_w_oloop", 1, write_to(map_->ctrl.oloop));
        // Both `_oloop != 0` terms are gated on `~_w_oloop`: a host write
        // to ctrl.oloop while a batch is still draining (the debugger's
        // early cancel after a trigger fires mid-batch) must neither tick
        // the design clock once more nor auto-latch during the write
        // cycle — the write itself defines the new loop count.
        assign_wire(
            "_latch", 1,
            binop(BinaryOp::BitOr, id("_w_latch"),
                  binop(BinaryOp::BitAnd, id("_updates"),
                        binop(BinaryOp::BitAnd,
                              binop(BinaryOp::Neq, id("_oloop"), num(32, 0)),
                              unop(UnaryOp::BitwiseNot, id("_w_oloop"))))));
        assign_wire(
            "_otick", 1,
            binop(BinaryOp::BitAnd,
                  binop(BinaryOp::BitAnd,
                        binop(BinaryOp::Neq, id("_oloop"), num(32, 0)),
                        unop(UnaryOp::BitwiseNot, id("_w_oloop"))),
                  unop(UnaryOp::BitwiseNot, id("_tasks"))));
    }

    void
    emit_mmio_block(ModuleDecl* out)
    {
        std::vector<StmtPtr> stmts;

        // Open-loop controller.
        stmts.push_back(nb_assign(
            id("_oloop"),
            ternary(id("_w_oloop"), id("IN"),
                    ternary(id("_otick"),
                            binop(BinaryOp::Sub, id("_oloop"), num(32, 1)),
                            ternary(id("_tasks"), num(32, 0),
                                    id("_oloop"))))));
        stmts.push_back(nb_assign(
            id("_itrs"),
            ternary(id("_w_oloop"), num(32, 0),
                    ternary(id("_otick"),
                            binop(BinaryOp::Add, id("_itrs"), num(32, 1)),
                            id("_itrs")))));
        if (!clock_input_.empty()) {
            stmts.push_back(if_stmt(
                id("_otick"),
                nb_assign(id(clock_input_),
                          unop(UnaryOp::BitwiseNot, id(clock_input_)))));
            // A full virtual tick completes when the clock falls.
            stmts.push_back(if_stmt(
                binop(BinaryOp::BitAnd, id("_otick"), id(clock_input_)),
                nb_assign(id("_vtime"),
                          binop(BinaryOp::Add, id("_vtime"),
                                num(64, 1)))));
        }

        // <LATCH>: commit every pending shadow, then sync the masks.
        {
            std::vector<StmtPtr> latch_stmts;
            for (size_t k = 0; k < update_sites_.size(); ++k) {
                latch_stmts.push_back(if_stmt(
                    binop(BinaryOp::BitXor, id("_um" + std::to_string(k)),
                          id("_num" + std::to_string(k))),
                    nb_assign(update_sites_[k].lvalue->clone(),
                              id(update_sites_[k].value_reg))));
                latch_stmts.push_back(
                    nb_assign(id("_um" + std::to_string(k)),
                              id("_num" + std::to_string(k))));
            }
            if (!latch_stmts.empty()) {
                stmts.push_back(
                    if_stmt(id("_latch"), block(std::move(latch_stmts))));
            }
        }

        // <CLEAR>: acknowledge task sites.
        {
            std::vector<StmtPtr> clear_stmts;
            for (size_t k = 0; k < map_->tasks.size(); ++k) {
                clear_stmts.push_back(
                    nb_assign(id("_tm" + std::to_string(k)),
                              id("_ntm" + std::to_string(k))));
            }
            if (!clear_stmts.empty()) {
                stmts.push_back(
                    if_stmt(id("_w_clear"), block(std::move(clear_stmts))));
            }
        }

        // <SET>: word writes, last so they take priority over the
        // open-loop clock toggle.
        {
            std::vector<CaseItem> items;
            for (const VarSlot& slot : map_->vars) {
                if (!slot.writable || slot.elems > 0) {
                    continue;
                }
                for (uint32_t j = 0; j < slot.words; ++j) {
                    CaseItem item;
                    item.labels.push_back(num(32, slot.base + j));
                    item.stmt = nb_assign(
                        slot.words == 1 ? id(slot.name)
                                        : word_of(slot.name, j),
                        id("IN"));
                    items.push_back(std::move(item));
                }
            }
            for (uint32_t j = 0; j < 2; ++j) {
                CaseItem item;
                item.labels.push_back(num(32, map_->ctrl.vtime + j));
                item.stmt = nb_assign(word_of("_vtime", j), id("IN"));
                items.push_back(std::move(item));
            }
            if (!items.empty()) {
                stmts.push_back(if_stmt(
                    id("RW"),
                    std::make_unique<CaseStmt>(CaseKind::Case, id("ADDR"),
                                               std::move(items))));
            }
            // Memory writes: address-range decode.
            for (const VarSlot& slot : map_->vars) {
                if (!slot.writable || slot.elems == 0) {
                    continue;
                }
                stmts.push_back(if_stmt(
                    mem_range_cond(slot),
                    nb_assign(mem_word_lvalue(slot), id("IN"))));
            }
        }

        auto always = std::make_unique<AlwaysBlock>();
        SensitivityItem sens;
        sens.edge = EdgeKind::Pos;
        sens.signal = id("CLK");
        always->sensitivity.push_back(std::move(sens));
        always->body = block(std::move(stmts));
        out->items.push_back(std::move(always));
    }

    ExprPtr
    mem_range_cond(const VarSlot& slot)
    {
        const uint32_t end = slot.base + slot.elems * slot.words;
        return binop(
            BinaryOp::LogicalAnd, id("RW"),
            binop(BinaryOp::LogicalAnd,
                  binop(BinaryOp::Geq, id("ADDR"), num(32, slot.base)),
                  binop(BinaryOp::Lt, id("ADDR"), num(32, end))));
    }

    /// mem[(ADDR-base)/words][((ADDR-base)%words)*32 +: 32]
    ExprPtr
    mem_word_expr(const VarSlot& slot)
    {
        ExprPtr rel =
            binop(BinaryOp::Sub, id("ADDR"), num(32, slot.base));
        ExprPtr element = std::make_unique<IndexExpr>(
            id(slot.name),
            binop(BinaryOp::Div, rel->clone(), num(32, slot.words)));
        if (slot.words == 1) {
            return element;
        }
        return std::make_unique<IndexedSelectExpr>(
            std::move(element),
            binop(BinaryOp::Mul,
                  binop(BinaryOp::Mod, std::move(rel),
                        num(32, slot.words)),
                  num(32, 32)),
            num(32, 32), /*up=*/true);
    }

    ExprPtr
    mem_word_lvalue(const VarSlot& slot)
    {
        return mem_word_expr(slot);
    }

    void
    emit_out_mux(ModuleDecl* out)
    {
        std::vector<StmtPtr> stmts;
        stmts.push_back(std::make_unique<BlockingAssignStmt>(
            id("OUT"), num(32, 0)));

        std::vector<CaseItem> items;
        for (const VarSlot& slot : map_->vars) {
            if (slot.elems > 0) {
                continue;
            }
            for (uint32_t j = 0; j < slot.words; ++j) {
                CaseItem item;
                item.labels.push_back(num(32, slot.base + j));
                item.stmt = std::make_unique<BlockingAssignStmt>(
                    id("OUT"), slot.words == 1 && slot.width <= 32
                                   ? id(slot.name)
                                   : word_of(slot.name, j));
                items.push_back(std::move(item));
            }
        }
        auto add_ctrl = [&items](uint32_t addr, ExprPtr rhs) {
            CaseItem item;
            item.labels.push_back(num(32, addr));
            item.stmt = std::make_unique<BlockingAssignStmt>(
                id("OUT"), std::move(rhs));
            items.push_back(std::move(item));
        };
        add_ctrl(map_->ctrl.updates, id("_updates"));
        add_ctrl(map_->ctrl.tasks, task_mask_expr());
        add_ctrl(map_->ctrl.itrs, id("_itrs"));
        add_ctrl(map_->ctrl.vtime, word_of("_vtime", 0));
        add_ctrl(map_->ctrl.vtime + 1, word_of("_vtime", 1));
        stmts.push_back(std::make_unique<CaseStmt>(
            CaseKind::Case, id("ADDR"), std::move(items)));

        for (const VarSlot& slot : map_->vars) {
            if (slot.elems == 0) {
                continue;
            }
            const uint32_t end = slot.base + slot.elems * slot.words;
            ExprPtr cond = binop(
                BinaryOp::LogicalAnd,
                binop(BinaryOp::Geq, id("ADDR"), num(32, slot.base)),
                binop(BinaryOp::Lt, id("ADDR"), num(32, end)));
            stmts.push_back(if_stmt(
                std::move(cond),
                std::make_unique<BlockingAssignStmt>(
                    id("OUT"), mem_word_expr(slot))));
        }

        auto always = std::make_unique<AlwaysBlock>();
        always->star = true;
        always->body = block(std::move(stmts));
        out->items.push_back(std::move(always));
    }

    /// {siteN-1 pending, ..., site0 pending} zero-extended to 32 bits.
    ExprPtr
    task_mask_expr()
    {
        if (map_->tasks.empty()) {
            return num(32, 0);
        }
        std::vector<ExprPtr> bits;
        for (size_t k = map_->tasks.size(); k-- > 0;) {
            bits.push_back(binop(BinaryOp::BitXor,
                                 id("_tm" + std::to_string(k)),
                                 id("_ntm" + std::to_string(k))));
        }
        if (bits.size() == 1) {
            return std::move(bits[0]);
        }
        return std::make_unique<ConcatExpr>(std::move(bits));
    }

    const ElaboratedModule& em_;
    std::string clock_input_;
    WrapperMap* map_;
    Diagnostics* diags_;

    bool ok_ = true;
    uint32_t next_addr_ = 0;
    std::unordered_set<std::string> blocking_targets_;
    std::vector<UpdateSite> update_sites_;
    std::vector<std::string> index_regs_;
    std::vector<std::pair<std::string, uint32_t>> arg_regs_;
    /// Per-monitor-site "has fired at least once" flags.
    std::vector<std::string> monitor_fired_regs_;
};

} // namespace

std::unique_ptr<ModuleDecl>
generate_hw_wrapper(const ElaboratedModule& em,
                    const std::string& clock_input, WrapperMap* map,
                    Diagnostics* diags)
{
    CASCADE_CHECK(map != nullptr);
    if (!clock_input.empty()) {
        const NetInfo* clk = em.find_net(clock_input);
        if (clk == nullptr || !clk->is_port || clk->dir != PortDir::Input) {
            diags->error({}, "open-loop clock '" + clock_input +
                                 "' is not an input of '" + em.name + "'");
            return nullptr;
        }
    }
    WrapperBuilder builder(em, clock_input, map, diags);
    return builder.run();
}

} // namespace cascade::ir
