#include "stdlib/stdlib.h"

namespace cascade::stdlib {

const char*
stdlib_source()
{
    // Note: Clock has no Verilog body; it is a native engine whose tick is
    // re-queued by the runtime's end_step (paper §3.4). It is declared here
    // so instantiations type-check uniformly.
    return R"(
module Clock(output wire val);
endmodule

module Pad#(parameter WIDTH = 4)(
  input wire [WIDTH-1:0] pins,
  output wire [WIDTH-1:0] val
);
  assign val = pins;
endmodule

module Led#(parameter WIDTH = 8)(
  input wire [WIDTH-1:0] val,
  output wire [WIDTH-1:0] pins
);
  assign pins = val;
endmodule

module GPIO#(parameter WIDTH = 8)(
  input wire [WIDTH-1:0] val,
  input wire [WIDTH-1:0] pins,
  output wire [WIDTH-1:0] in_val,
  output wire [WIDTH-1:0] out_pins
);
  assign in_val = pins;
  assign out_pins = val;
endmodule

module Reset(
  input wire pins,
  output wire val
);
  assign val = pins;
endmodule

module Memory#(parameter ADDR_SIZE = 8, parameter BYTE_SIZE = 8)(
  input wire clk,
  input wire wen,
  input wire [ADDR_SIZE-1:0] raddr1,
  output wire [BYTE_SIZE-1:0] rdata1,
  input wire [ADDR_SIZE-1:0] raddr2,
  output wire [BYTE_SIZE-1:0] rdata2,
  input wire [ADDR_SIZE-1:0] waddr,
  input wire [BYTE_SIZE-1:0] wdata
);
  reg [BYTE_SIZE-1:0] mem [0:2**ADDR_SIZE-1];
  always @(posedge clk)
    if (wen)
      mem[waddr] <= wdata;
  assign rdata1 = mem[raddr1];
  assign rdata2 = mem[raddr2];
endmodule

module FIFO#(parameter LOG_DEPTH = 4, parameter BYTE_SIZE = 8)(
  input wire clk,
  // Host-facing push side: the runtime drives these pins from the host
  // byte stream (paper Fig. 12: host-to-FPGA transport over MMIO).
  input wire [BYTE_SIZE-1:0] pins,
  input wire push,
  // User-facing pop side.
  input wire rreq,
  output wire [BYTE_SIZE-1:0] rdata,
  output wire empty,
  output wire full
);
  reg [BYTE_SIZE-1:0] mem [0:2**LOG_DEPTH-1];
  reg [LOG_DEPTH:0] head = 0;
  reg [LOG_DEPTH:0] tail = 0;
  assign empty = head == tail;
  assign full = (tail - head) == (1 << LOG_DEPTH);
  assign rdata = mem[head[LOG_DEPTH-1:0]];
  always @(posedge clk) begin
    if (push && !full) begin
      mem[tail[LOG_DEPTH-1:0]] <= pins;
      tail <= tail + 1;
    end
    if (rreq && !empty)
      head <= head + 1;
  end
endmodule
)";
}

const std::set<std::string>&
stdlib_type_names()
{
    static const std::set<std::string> names = {
        "Clock", "Pad", "Led", "GPIO", "Reset", "Memory", "FIFO",
    };
    return names;
}

} // namespace cascade::stdlib
