/// \file
/// Causal request tracing tests: the RequestTracker unit contract
/// (begin/segment/end lifecycle, bounded ring, schema-tagged JSON), the
/// acceptance invariant that a forced cold compile's critical-path
/// segments (queue, cache, synth, techmap, place, admission, adoption)
/// partition its end-to-end latency to within 1%, the REPL-facing
/// `:why` decomposition, Chrome-trace flow arrows linking a request's
/// spans across threads, and the `cascade_request_*` histograms on the
/// Prometheus surface.

#include "telemetry/request_trace.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "runtime/runtime.h"
#include "telemetry/trace.h"

namespace cascade {
namespace {

using runtime::Runtime;
using telemetry::RequestRecord;
using telemetry::RequestTracker;
using telemetry::Tracer;

Runtime::Options
hw_fast()
{
    Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;          // keep tests fast
    opts.open_loop_target_wall_s = 0.02; // small adaptive batches too
    return opts;
}

/// Steps until the JIT adopts a hardware engine (bounded by wall time).
bool
wait_for_hardware(Runtime& rt, double timeout_s = 60.0)
{
    const auto start = std::chrono::steady_clock::now();
    while (!rt.hardware_ready()) {
        rt.step();
        if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count() > timeout_s) {
            return false;
        }
    }
    return true;
}

const char* const kCounter = "reg [7:0] n = 0;\n"
                             "always @(posedge clk.val) begin\n"
                             "  n <= n + 1;\n"
                             "end\n";

TEST(RequestTrace, TrackerLifecycleAndLookup)
{
    RequestTracker tracker;
    EXPECT_EQ(tracker.open_count(), 0u);
    EXPECT_EQ(tracker.completed_total(), 0u);

    tracker.begin(7, "compile", 3, 0, 100.0);
    EXPECT_EQ(tracker.open_count(), 1u);
    tracker.add_segment(7, "queue", 40.0);
    tracker.add_segment(7, "synth", 60.0);
    tracker.annotate_cache(7, true);

    RequestRecord open;
    ASSERT_TRUE(tracker.find(7, &open));
    EXPECT_FALSE(open.done);
    EXPECT_TRUE(open.cache_hit);
    ASSERT_EQ(open.segments.size(), 2u);

    EXPECT_TRUE(tracker.end(7, true, 200.0));
    EXPECT_EQ(tracker.open_count(), 0u);
    EXPECT_EQ(tracker.completed_total(), 1u);

    RequestRecord done;
    ASSERT_TRUE(tracker.find(7, &done));
    EXPECT_TRUE(done.done);
    EXPECT_TRUE(done.ok);
    EXPECT_DOUBLE_EQ(done.total_us(), 100.0);
    EXPECT_DOUBLE_EQ(done.segment_sum_us(), 100.0);

    // Unknown or already-closed ids are refused, not invented: closing
    // a superseded request twice must not double-journal.
    EXPECT_FALSE(tracker.end(7, true, 300.0));
    EXPECT_FALSE(tracker.end(99, true, 300.0));
    RequestRecord missing;
    EXPECT_FALSE(tracker.find(99, &missing));
}

TEST(RequestTrace, RingKeepsMostRecentFinishedRequests)
{
    RequestTracker tracker(nullptr, 4);
    for (uint64_t id = 1; id <= 10; ++id) {
        tracker.complete(id, "eval", id, 0, 0.0, 1.0, "eval", true);
    }
    EXPECT_EQ(tracker.completed_total(), 10u);
    const auto recent = tracker.recent();
    ASSERT_EQ(recent.size(), 4u);
    // Oldest-first, bounded by capacity.
    EXPECT_EQ(recent.front().id, 7u);
    EXPECT_EQ(recent.back().id, 10u);
    RequestRecord evicted;
    EXPECT_FALSE(tracker.find(1, &evicted));
}

TEST(RequestTrace, JsonCarriesSchemaAndSegments)
{
    RequestTracker tracker;
    tracker.begin(12, "compile", 2, 5, 10.0);
    tracker.add_segment(12, "queue", 30.0);
    tracker.end(12, true, 40.0);
    tracker.begin(13, "eval", 3, 5, 50.0); // still open

    const std::string json = tracker.json();
    EXPECT_NE(json.find("\"schema\":\"cascade.requests.v1\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"completed\":1"), std::string::npos);
    EXPECT_NE(json.find("\"open\":1"), std::string::npos);
    EXPECT_NE(json.find("\"id\":12"), std::string::npos);
    EXPECT_NE(json.find("\"tenant\":5"), std::string::npos);
    EXPECT_NE(json.find("{\"name\":\"queue\",\"us\":30.000}"),
              std::string::npos)
        << json;

    // NDJSON renders the same objects one per line, finished and open.
    const std::string ndjson = tracker.ndjson();
    EXPECT_NE(ndjson.find("\"id\":12"), std::string::npos);
    EXPECT_NE(ndjson.find("\"id\":13"), std::string::npos);
    EXPECT_EQ(std::count(ndjson.begin(), ndjson.end(), '\n'), 2);

    // The why() view reports the segment-sum invariant explicitly.
    const std::string why = tracker.why(12);
    EXPECT_NE(why.find("request 12"), std::string::npos) << why;
    EXPECT_NE(why.find("queue"), std::string::npos);
    EXPECT_NE(why.find("segments sum"), std::string::npos);
    EXPECT_NE(why.find("100.0% of end-to-end"), std::string::npos) << why;
    EXPECT_NE(tracker.why(999).find("not found"), std::string::npos);
}

TEST(RequestTrace, FlowEventsRenderChromePhases)
{
    Tracer tracer;
    tracer.flow_tenant("request", 's', 42, 0, 1.0);
    tracer.flow_tenant("request", 't', 42, 3, 2.0);
    tracer.flow_tenant("request", 'f', 42, 0, 3.0);
    const std::string json = tracer.chrome_json();
    EXPECT_NE(json.find("\"ph\":\"s\",\"id\":42"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"ph\":\"t\",\"id\":42"), std::string::npos);
    // Flow-end binds to the enclosing slice's end ("bp":"e").
    EXPECT_NE(json.find("\"ph\":\"f\",\"id\":42,\"bp\":\"e\""),
              std::string::npos)
        << json;
}

/// The acceptance criterion: a forced cold compile's request must carry
/// the named critical-path segments, and their durations must sum to
/// the end-to-end latency within 1%.
TEST(RequestTrace, ColdCompileSegmentsPartitionEndToEndLatency)
{
    Runtime::Options opts = hw_fast();
    opts.compile_seed = 1; // deterministic placement, forced cold path
    Runtime rt(opts);
    ASSERT_TRUE(rt.eval(kCounter));
    ASSERT_TRUE(wait_for_hardware(rt));

    // The compile request stays open until the first post-adoption
    // hardware tick; run until it retires (bounded by wall time).
    RequestRecord compile;
    bool closed = false;
    const auto start = std::chrono::steady_clock::now();
    while (!closed) {
        rt.step();
        for (const RequestRecord& r : rt.request_tracker().recent()) {
            // Skip superseded launches (e.g. the bootstrap compile,
            // retired ok=false): the adopted compile is the one whose
            // request closed at its first hardware tick.
            if (std::string(r.kind) == "compile" && r.done && r.ok) {
                compile = r;
                closed = true;
            }
        }
        ASSERT_LT(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count(),
                  60.0)
            << "compile request never retired";
    }

    EXPECT_TRUE(compile.ok);
    EXPECT_FALSE(compile.cache_hit) << "expected a cold compile";
    EXPECT_GT(compile.id, 0u);

    std::set<std::string> names;
    for (const auto& s : compile.segments) {
        names.insert(s.name);
    }
    for (const char* required : {"queue", "cache", "synth", "techmap",
                                 "place", "admission", "adoption"}) {
        EXPECT_TRUE(names.count(required) == 1)
            << "missing segment: " << required;
    }

    // Segments partition the end-to-end wall time (within 1%).
    const double total = compile.total_us();
    ASSERT_GT(total, 0.0);
    EXPECT_NEAR(compile.segment_sum_us(), total, 0.01 * total)
        << rt.request_why(compile.id);

    // The REPL-facing views agree on the same request.
    const std::string why = rt.request_why(compile.id);
    EXPECT_NE(why.find("compile"), std::string::npos) << why;
    EXPECT_NE(why.find("synth"), std::string::npos);
    EXPECT_NE(why.find("adoption"), std::string::npos);
    EXPECT_NE(why.find("segments sum"), std::string::npos);
    const std::string table = rt.requests_table();
    EXPECT_NE(table.find(std::to_string(compile.id)),
              std::string::npos)
        << table;
    EXPECT_NE(rt.requests_json().find("\"schema\":\"cascade.requests.v1\""),
              std::string::npos);

    // The eval that kicked everything off was tracked too.
    bool saw_eval = false;
    for (const RequestRecord& r : rt.request_tracker().recent()) {
        if (std::string(r.kind) == "eval" && r.done && r.ok) {
            saw_eval = true;
        }
    }
    EXPECT_TRUE(saw_eval);

    // Flow arrows tie the request's spans across threads: an 's' at
    // launch on the runtime thread, a 't' in the compile worker, an 'f'
    // at adoption.
    std::set<char> phases;
    for (const auto& e : Tracer::global().events()) {
        if (e.flow_id == compile.id && e.flow_phase != 0) {
            phases.insert(e.flow_phase);
        }
    }
    EXPECT_TRUE(phases.count('s') == 1) << "missing flow start";
    EXPECT_TRUE(phases.count('t') == 1) << "missing flow step";
    EXPECT_TRUE(phases.count('f') == 1) << "missing flow end";

    // The Prometheus surface carries the per-segment histograms and the
    // request counters.
    const std::string metrics = rt.metrics_text();
    EXPECT_NE(metrics.find("cascade_request_total_ns"), std::string::npos);
    EXPECT_NE(metrics.find("cascade_request_synth_ns"), std::string::npos);
    EXPECT_NE(metrics.find("cascade_request_queue_ns"), std::string::npos);
    EXPECT_NE(metrics.find("cascade_requests_completed_total"),
              std::string::npos);
    EXPECT_NE(metrics.find("cascade_requests_open"), std::string::npos);
}

/// Software-only evals are single-segment requests; they must retire
/// immediately with the "eval" segment covering the whole interval.
TEST(RequestTrace, SoftwareEvalRetiresAsSingleSegmentRequest)
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    Runtime rt(opts);
    ASSERT_TRUE(rt.eval(kCounter));
    rt.run(16);

    bool found = false;
    for (const RequestRecord& r : rt.request_tracker().recent()) {
        if (std::string(r.kind) != "eval") {
            continue;
        }
        found = true;
        EXPECT_TRUE(r.done);
        EXPECT_TRUE(r.ok);
        ASSERT_EQ(r.segments.size(), 1u);
        EXPECT_STREQ(r.segments[0].name, "eval");
        EXPECT_NEAR(r.segment_sum_us(), r.total_us(),
                    0.01 * r.total_us() + 1e-9);
    }
    EXPECT_TRUE(found);

    // A failed eval is tracked as ok=false, not dropped.
    std::string errors;
    EXPECT_FALSE(rt.eval("wire w = ;", &errors));
    bool saw_failed = false;
    for (const RequestRecord& r : rt.request_tracker().recent()) {
        if (std::string(r.kind) == "eval" && !r.ok) {
            saw_failed = true;
        }
    }
    EXPECT_TRUE(saw_failed);
}

} // namespace
} // namespace cascade
