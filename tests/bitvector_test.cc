/// \file
/// Unit and property tests for cascade::BitVector.

#include "common/bitvector.h"

#include <cstdint>
#include <random>

#include <gtest/gtest.h>

namespace cascade {
namespace {

TEST(BitVector, DefaultIsOneBitZero)
{
    BitVector v;
    EXPECT_EQ(v.width(), 1u);
    EXPECT_TRUE(v.is_zero());
}

TEST(BitVector, ConstructTruncatesToWidth)
{
    BitVector v(4, 0xff);
    EXPECT_EQ(v.to_uint64(), 0xfull);
    BitVector w(8, 0x180);
    EXPECT_EQ(w.to_uint64(), 0x80ull);
}

TEST(BitVector, WideConstructZeroesHighWords)
{
    BitVector v(200, 42);
    EXPECT_EQ(v.to_uint64(), 42ull);
    for (uint32_t i = 64; i < 200; ++i) {
        EXPECT_FALSE(v.bit(i));
    }
}

TEST(BitVector, CopyAndMoveSemantics)
{
    BitVector a(128, 7);
    a.set_bit(100, true);
    BitVector b = a;
    EXPECT_EQ(a, b);
    BitVector c = std::move(a);
    EXPECT_EQ(b, c);
    // Moved-from object is a valid 1-bit zero.
    EXPECT_EQ(a.width(), 1u);

    BitVector d(16, 3);
    d = b;
    EXPECT_EQ(d, b);
    d = BitVector(8, 9);
    EXPECT_EQ(d.to_uint64(), 9u);

    // Self-assignment is a no-op.
    d = *static_cast<BitVector*>(&d);
    EXPECT_EQ(d.to_uint64(), 9u);
}

TEST(BitVector, AssignReusesEqualSizedHeap)
{
    BitVector a(128, 1);
    BitVector b(100, 2);
    a = b;
    EXPECT_EQ(a.width(), 100u);
    EXPECT_EQ(a.to_uint64(), 2u);
}

TEST(BitVector, BitGetSet)
{
    BitVector v(70);
    v.set_bit(0, true);
    v.set_bit(69, true);
    EXPECT_TRUE(v.bit(0));
    EXPECT_TRUE(v.bit(69));
    EXPECT_FALSE(v.bit(35));
    EXPECT_FALSE(v.bit(1000)); // out of range reads as zero
    v.set_bit(69, false);
    EXPECT_FALSE(v.bit(69));
}

TEST(BitVector, AllOnes)
{
    BitVector v = BitVector::all_ones(67);
    EXPECT_TRUE(v.reduce_and());
    EXPECT_EQ(v.slice(64, 3).to_uint64(), 7u);
}

TEST(BitVector, ResizeZeroExtend)
{
    BitVector v(4, 0xA);
    BitVector w = v.resized(8);
    EXPECT_EQ(w.width(), 8u);
    EXPECT_EQ(w.to_uint64(), 0xAull);
}

TEST(BitVector, ResizeSignExtend)
{
    BitVector v(4, 0xA); // MSB set
    BitVector w = v.resized(8, /*sign_extend=*/true);
    EXPECT_EQ(w.to_uint64(), 0xFAull);
    BitVector x(4, 0x5);
    EXPECT_EQ(x.resized(8, true).to_uint64(), 0x5ull);
}

TEST(BitVector, ResizeTruncate)
{
    BitVector v(16, 0xBEEF);
    EXPECT_EQ(v.resized(8).to_uint64(), 0xEFull);
}

TEST(BitVector, ResizeAcrossWordBoundary)
{
    BitVector v(64, ~uint64_t{0});
    BitVector w = v.resized(128, true);
    EXPECT_TRUE(w.reduce_and());
    BitVector u = v.resized(128, false);
    EXPECT_EQ(u.slice(64, 64).to_uint64(), 0ull);
}

TEST(BitVector, SliceBasic)
{
    BitVector v(16, 0xABCD);
    EXPECT_EQ(v.slice(0, 4).to_uint64(), 0xDull);
    EXPECT_EQ(v.slice(4, 4).to_uint64(), 0xCull);
    EXPECT_EQ(v.slice(8, 8).to_uint64(), 0xABull);
    EXPECT_EQ(v.slice(12, 8).to_uint64(), 0x0Aull); // beyond width reads 0
}

TEST(BitVector, SliceAcrossWords)
{
    BitVector v(128);
    v.set_slice(60, BitVector(8, 0xFF));
    EXPECT_EQ(v.slice(60, 8).to_uint64(), 0xFFull);
    EXPECT_EQ(v.slice(58, 12).to_uint64(), 0xFF  << 2);
}

TEST(BitVector, SetSliceDropsOutOfRange)
{
    BitVector v(8);
    v.set_slice(6, BitVector(8, 0xFF));
    EXPECT_EQ(v.to_uint64(), 0xC0ull);
    v.set_slice(100, BitVector(4, 0xF)); // entirely out of range
    EXPECT_EQ(v.to_uint64(), 0xC0ull);
}

TEST(BitVector, AddWithCarryChain)
{
    BitVector a(128);
    a.set_word(0, ~uint64_t{0});
    BitVector b(128, 1);
    BitVector s = BitVector::add(a, b);
    EXPECT_EQ(s.word(0), 0ull);
    EXPECT_EQ(s.word(1), 1ull);
}

TEST(BitVector, AddWrapsAtWidth)
{
    BitVector a(8, 0xFF);
    BitVector b(8, 1);
    EXPECT_EQ(BitVector::add(a, b).to_uint64(), 0ull);
}

TEST(BitVector, SubAndNegate)
{
    BitVector a(8, 5);
    BitVector b(8, 7);
    EXPECT_EQ(BitVector::sub(a, b).to_uint64(), 0xFEull); // -2
    EXPECT_EQ(BitVector(8, 1).negated().to_uint64(), 0xFFull);
}

TEST(BitVector, MulBasicAndWrap)
{
    BitVector a(8, 20);
    BitVector b(8, 13);
    EXPECT_EQ(BitVector::mul(a, b).to_uint64(), (20 * 13) & 0xFFull);
}

TEST(BitVector, MulWide)
{
    BitVector a(128);
    a.set_word(0, ~uint64_t{0}); // 2^64 - 1
    BitVector s = BitVector::mul(a, a);
    // (2^64-1)^2 = 2^128 - 2^65 + 1
    EXPECT_EQ(s.word(0), 1ull);
    EXPECT_EQ(s.word(1), ~uint64_t{0} - 1);
}

TEST(BitVector, DivRemUnsigned)
{
    BitVector a(16, 1000);
    BitVector b(16, 33);
    EXPECT_EQ(BitVector::divu(a, b).to_uint64(), 30ull);
    EXPECT_EQ(BitVector::remu(a, b).to_uint64(), 10ull);
}

TEST(BitVector, DivByZeroIsZero)
{
    BitVector a(16, 1000);
    BitVector z(16, 0);
    EXPECT_TRUE(BitVector::divu(a, z).is_zero());
    EXPECT_TRUE(BitVector::remu(a, z).is_zero());
    EXPECT_TRUE(BitVector::divs(a, z).is_zero());
}

TEST(BitVector, DivRemWide)
{
    // (2^100 + 12345) / 7 computed against a known result.
    BitVector a(128, 12345);
    a.set_bit(100, true);
    BitVector b(128, 7);
    BitVector q = BitVector::divu(a, b);
    BitVector r = BitVector::remu(a, b);
    BitVector back = BitVector::add(BitVector::mul(q, b), r);
    EXPECT_EQ(back, a);
    EXPECT_TRUE(BitVector::ult(r, b));
}

TEST(BitVector, SignedDivTakesSignOfQuotient)
{
    BitVector a(8, 0xF6); // -10
    BitVector b(8, 3);
    EXPECT_EQ(BitVector::divs(a, b).to_signed_dec_string(), "-3");
    EXPECT_EQ(BitVector::rems(a, b).to_signed_dec_string(), "-1");
    BitVector c(8, 10);
    BitVector d(8, 0xFD); // -3
    EXPECT_EQ(BitVector::divs(c, d).to_signed_dec_string(), "-3");
    EXPECT_EQ(BitVector::rems(c, d).to_signed_dec_string(), "1");
}

TEST(BitVector, Pow)
{
    BitVector a(16, 3);
    BitVector b(16, 7);
    EXPECT_EQ(BitVector::pow(a, b).to_uint64(), 2187ull);
    EXPECT_EQ(BitVector::pow(a, BitVector(16, 0)).to_uint64(), 1ull);
}

TEST(BitVector, BitwiseOps)
{
    BitVector a(8, 0b11001100);
    BitVector b(8, 0b10101010);
    EXPECT_EQ(BitVector::bit_and(a, b).to_uint64(), 0b10001000ull);
    EXPECT_EQ(BitVector::bit_or(a, b).to_uint64(), 0b11101110ull);
    EXPECT_EQ(BitVector::bit_xor(a, b).to_uint64(), 0b01100110ull);
    EXPECT_EQ(a.bit_not().to_uint64(), 0b00110011ull);
}

TEST(BitVector, ShiftLeft)
{
    BitVector v(8, 0x81);
    EXPECT_EQ(v.shl(1).to_uint64(), 0x02ull);
    EXPECT_EQ(v.shl(8).to_uint64(), 0ull);
    EXPECT_EQ(v.shl(100).to_uint64(), 0ull);
}

TEST(BitVector, ShiftLeftWide)
{
    BitVector v(128, 1);
    EXPECT_TRUE(v.shl(100).bit(100));
    EXPECT_EQ(v.shl(100).slice(0, 64).to_uint64(), 0ull);
}

TEST(BitVector, LogicalShiftRight)
{
    BitVector v(8, 0x81);
    EXPECT_EQ(v.lshr(1).to_uint64(), 0x40ull);
    EXPECT_EQ(v.lshr(9).to_uint64(), 0ull);
}

TEST(BitVector, ArithmeticShiftRight)
{
    BitVector v(8, 0x81);
    EXPECT_EQ(v.ashr(1).to_uint64(), 0xC0ull);
    EXPECT_EQ(v.ashr(100).to_uint64(), 0xFFull);
    BitVector p(8, 0x41);
    EXPECT_EQ(p.ashr(1).to_uint64(), 0x20ull);
    EXPECT_EQ(p.ashr(100).to_uint64(), 0ull);
}

TEST(BitVector, Comparisons)
{
    BitVector a(8, 5);
    BitVector b(8, 250); // -6 signed
    EXPECT_TRUE(BitVector::ult(a, b));
    EXPECT_TRUE(BitVector::slt(b, a));
    EXPECT_TRUE(BitVector::ule(a, a));
    EXPECT_TRUE(BitVector::sle(a, a));
    EXPECT_TRUE(BitVector::eq(a, a));
    EXPECT_FALSE(BitVector::eq(a, b));
}

TEST(BitVector, Reductions)
{
    EXPECT_TRUE(BitVector::all_ones(65).reduce_and());
    EXPECT_FALSE(BitVector(65, 1).reduce_and());
    EXPECT_TRUE(BitVector(65, 1).reduce_or());
    EXPECT_FALSE(BitVector(65, 0).reduce_or());
    EXPECT_TRUE(BitVector(8, 0b0111).reduce_xor());
    EXPECT_FALSE(BitVector(8, 0b0110).reduce_xor());
}

TEST(BitVector, Concat)
{
    BitVector hi(4, 0xA);
    BitVector lo(8, 0xBC);
    BitVector c = BitVector::concat(hi, lo);
    EXPECT_EQ(c.width(), 12u);
    EXPECT_EQ(c.to_uint64(), 0xABCull);
}

TEST(BitVector, Strings)
{
    BitVector v(12, 0xABC);
    EXPECT_EQ(v.to_hex_string(), "abc");
    EXPECT_EQ(v.to_bin_string(), "101010111100");
    EXPECT_EQ(v.to_dec_string(), "2748");
    BitVector n(8, 0xFE);
    EXPECT_EQ(n.to_signed_dec_string(), "-2");
}

TEST(BitVector, WideDecimalRoundTrip)
{
    auto v = BitVector::from_decimal(256, "123456789012345678901234567890");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->to_dec_string(), "123456789012345678901234567890");
}

TEST(BitVector, FromDecimalRejectsGarbage)
{
    EXPECT_FALSE(BitVector::from_decimal(32, "12a4").has_value());
    EXPECT_FALSE(BitVector::from_decimal(32, "").has_value());
    EXPECT_TRUE(BitVector::from_decimal(32, "1_000").has_value());
}

TEST(BitVector, HashDistinguishes)
{
    EXPECT_NE(BitVector(8, 1).hash(), BitVector(8, 2).hash());
    EXPECT_EQ(BitVector(8, 1).hash(), BitVector(8, 1).hash());
}

// ---------------------------------------------------------------------------
// Property tests: compare against native 64-bit arithmetic across widths.
// ---------------------------------------------------------------------------

class BitVectorProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BitVectorProperty, ArithmeticMatchesNative)
{
    const uint32_t w = GetParam();
    const uint64_t mask = w >= 64 ? ~uint64_t{0} : (uint64_t{1} << w) - 1;
    std::mt19937_64 rng(w * 7919 + 13);
    for (int iter = 0; iter < 200; ++iter) {
        const uint64_t x = rng() & mask;
        const uint64_t y = rng() & mask;
        BitVector a(w, x);
        BitVector b(w, y);
        EXPECT_EQ(BitVector::add(a, b).to_uint64(), (x + y) & mask);
        EXPECT_EQ(BitVector::sub(a, b).to_uint64(), (x - y) & mask);
        EXPECT_EQ(BitVector::mul(a, b).to_uint64(), (x * y) & mask);
        if (y != 0) {
            EXPECT_EQ(BitVector::divu(a, b).to_uint64(), (x / y) & mask);
            EXPECT_EQ(BitVector::remu(a, b).to_uint64(), (x % y) & mask);
        }
        EXPECT_EQ(BitVector::bit_and(a, b).to_uint64(), x & y);
        EXPECT_EQ(BitVector::bit_or(a, b).to_uint64(), x | y);
        EXPECT_EQ(BitVector::bit_xor(a, b).to_uint64(), x ^ y);
        EXPECT_EQ(BitVector::ult(a, b), x < y);
        EXPECT_EQ(BitVector::eq(a, b), x == y);
        const uint32_t sh = static_cast<uint32_t>(rng() % (w + 4));
        EXPECT_EQ(a.shl(sh).to_uint64(),
                  sh >= w ? 0 : (x << sh) & mask);
        EXPECT_EQ(a.lshr(sh).to_uint64(), sh >= 64 ? 0 : (x >> sh));
    }
}

TEST_P(BitVectorProperty, SliceConcatRoundTrip)
{
    const uint32_t w = GetParam();
    std::mt19937_64 rng(w * 104729 + 7);
    for (int iter = 0; iter < 50; ++iter) {
        BitVector v(w, rng());
        if (w < 2) {
            continue;
        }
        const uint32_t cut = 1 + static_cast<uint32_t>(rng() % (w - 1));
        BitVector lo = v.slice(0, cut);
        BitVector hi = v.slice(cut, w - cut);
        EXPECT_EQ(BitVector::concat(hi, lo), v);
    }
}

TEST_P(BitVectorProperty, NegatedIsAdditiveInverse)
{
    const uint32_t w = GetParam();
    std::mt19937_64 rng(w);
    for (int iter = 0; iter < 50; ++iter) {
        BitVector v(w, rng());
        EXPECT_TRUE(BitVector::add(v, v.negated()).is_zero());
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVectorProperty,
                         ::testing::Values(1u, 3u, 8u, 16u, 31u, 32u, 33u,
                                           63u, 64u));

// Wide-width properties exercised separately (no native mirror).
class BitVectorWideProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BitVectorWideProperty, DivRemIdentity)
{
    const uint32_t w = GetParam();
    std::mt19937_64 rng(w * 31 + 5);
    for (int iter = 0; iter < 25; ++iter) {
        BitVector a(w);
        BitVector b(w);
        for (uint32_t i = 0; i < a.num_words(); ++i) {
            a.set_word(i, rng());
        }
        for (uint32_t i = 0; i < b.num_words() / 2 + 1; ++i) {
            b.set_word(i, rng());
        }
        if (b.is_zero()) {
            continue;
        }
        BitVector q = BitVector::divu(a, b);
        BitVector r = BitVector::remu(a, b);
        EXPECT_EQ(BitVector::add(BitVector::mul(q, b), r), a);
        EXPECT_TRUE(BitVector::ult(r, b));
    }
}

TEST_P(BitVectorWideProperty, ShiftInverse)
{
    const uint32_t w = GetParam();
    std::mt19937_64 rng(w * 17);
    for (int iter = 0; iter < 25; ++iter) {
        BitVector v(w);
        for (uint32_t i = 0; i < v.num_words(); ++i) {
            v.set_word(i, rng());
        }
        const uint32_t sh = static_cast<uint32_t>(rng() % w);
        // (v << sh) >> sh recovers the low bits.
        BitVector round = v.shl(sh).lshr(sh);
        EXPECT_EQ(round, v.slice(0, w - sh).resized(w));
    }
}

INSTANTIATE_TEST_SUITE_P(WideWidths, BitVectorWideProperty,
                         ::testing::Values(65u, 100u, 128u, 256u, 257u));

} // namespace
} // namespace cascade
