#include "common/bitvector.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace cascade {

BitVector::BitVector(uint32_t width, uint64_t value)
    : width_(width)
{
    CASCADE_CHECK(width >= 1);
    if (is_inline()) {
        inline_word_ = value;
    } else {
        heap_ = new uint64_t[num_words()]();
        heap_[0] = value;
    }
    mask_top();
}

BitVector::BitVector(const BitVector& other)
    : width_(other.width_)
{
    if (is_inline()) {
        inline_word_ = other.inline_word_;
    } else {
        heap_ = new uint64_t[num_words()];
        std::memcpy(heap_, other.heap_, num_words() * sizeof(uint64_t));
    }
}

BitVector::BitVector(BitVector&& other) noexcept
    : width_(other.width_)
{
    if (is_inline()) {
        inline_word_ = other.inline_word_;
    } else {
        heap_ = other.heap_;
        other.width_ = 1;
        other.inline_word_ = 0;
    }
}

BitVector&
BitVector::operator=(const BitVector& other)
{
    if (this == &other) {
        return *this;
    }
    if (!is_inline()) {
        if (!other.is_inline() && num_words() == other.num_words()) {
            // Reuse the existing allocation.
            width_ = other.width_;
            std::memcpy(heap_, other.heap_, num_words() * sizeof(uint64_t));
            return *this;
        }
        delete[] heap_;
    }
    width_ = other.width_;
    if (is_inline()) {
        inline_word_ = other.inline_word_;
    } else {
        heap_ = new uint64_t[num_words()];
        std::memcpy(heap_, other.heap_, num_words() * sizeof(uint64_t));
    }
    return *this;
}

BitVector&
BitVector::operator=(BitVector&& other) noexcept
{
    if (this == &other) {
        return *this;
    }
    if (!is_inline()) {
        delete[] heap_;
    }
    width_ = other.width_;
    if (is_inline()) {
        inline_word_ = other.inline_word_;
    } else {
        heap_ = other.heap_;
        other.width_ = 1;
        other.inline_word_ = 0;
    }
    return *this;
}

BitVector::~BitVector()
{
    if (!is_inline()) {
        delete[] heap_;
    }
}

BitVector
BitVector::all_ones(uint32_t width)
{
    BitVector v(width);
    uint64_t* w = v.words();
    for (uint32_t i = 0; i < v.num_words(); ++i) {
        w[i] = ~uint64_t{0};
    }
    v.mask_top();
    return v;
}

std::optional<BitVector>
BitVector::from_decimal(uint32_t width, const std::string& digits)
{
    if (digits.empty()) {
        return std::nullopt;
    }
    BitVector v(width, 0);
    for (char c : digits) {
        if (c == '_') {
            continue;
        }
        if (c < '0' || c > '9') {
            return std::nullopt;
        }
        v.muladd_small(10, static_cast<uint32_t>(c - '0'));
    }
    return v;
}

void
BitVector::set_word(uint32_t i, uint64_t w)
{
    CASCADE_CHECK(i < num_words());
    words()[i] = w;
    mask_top();
}

bool
BitVector::bit(uint32_t i) const
{
    if (i >= width_) {
        return false;
    }
    return (words()[i / 64] >> (i % 64)) & 1;
}

void
BitVector::set_bit(uint32_t i, bool b)
{
    CASCADE_CHECK(i < width_);
    uint64_t& w = words()[i / 64];
    const uint64_t mask = uint64_t{1} << (i % 64);
    w = b ? (w | mask) : (w & ~mask);
}

bool
BitVector::to_bool() const
{
    const uint64_t* w = words();
    for (uint32_t i = 0; i < num_words(); ++i) {
        if (w[i] != 0) {
            return true;
        }
    }
    return false;
}

BitVector
BitVector::resized(uint32_t new_width, bool sign_extend) const
{
    BitVector out(new_width);
    const bool sign = sign_extend && sign_bit();
    const uint32_t copy_words = std::min(num_words(), out.num_words());
    uint64_t* ow = out.words();
    const uint64_t* iw = words();
    for (uint32_t i = 0; i < copy_words; ++i) {
        ow[i] = iw[i];
    }
    if (sign && new_width > width_) {
        // Fill the extension region with ones.
        for (uint32_t i = width_; i < new_width; ++i) {
            ow[i / 64] |= uint64_t{1} << (i % 64);
        }
    }
    out.mask_top();
    return out;
}

BitVector
BitVector::slice(uint32_t lsb, uint32_t width) const
{
    BitVector out(width);
    uint64_t* ow = out.words();
    const uint64_t* iw = words();
    const uint32_t word_shift = lsb / 64;
    const uint32_t bit_shift = lsb % 64;
    for (uint32_t i = 0; i < out.num_words(); ++i) {
        const uint32_t src = i + word_shift;
        uint64_t lo = src < num_words() ? iw[src] : 0;
        uint64_t hi = src + 1 < num_words() ? iw[src + 1] : 0;
        ow[i] = bit_shift == 0 ? lo : (lo >> bit_shift) | (hi << (64 - bit_shift));
    }
    out.mask_top();
    return out;
}

void
BitVector::set_slice(uint32_t lsb, const BitVector& v)
{
    const uint32_t n = std::min(v.width_, lsb >= width_ ? 0 : width_ - lsb);
    for (uint32_t i = 0; i < n; ++i) {
        set_bit(lsb + i, v.bit(i));
    }
}

BitVector
BitVector::add(const BitVector& a, const BitVector& b)
{
    CASCADE_CHECK(a.width_ == b.width_);
    BitVector out(a.width_);
    uint64_t* ow = out.words();
    const uint64_t* aw = a.words();
    const uint64_t* bw = b.words();
    uint64_t carry = 0;
    for (uint32_t i = 0; i < out.num_words(); ++i) {
        const uint64_t s1 = aw[i] + bw[i];
        const uint64_t c1 = s1 < aw[i];
        const uint64_t s2 = s1 + carry;
        const uint64_t c2 = s2 < s1;
        ow[i] = s2;
        carry = c1 | c2;
    }
    out.mask_top();
    return out;
}

BitVector
BitVector::sub(const BitVector& a, const BitVector& b)
{
    return add(a, b.negated());
}

BitVector
BitVector::negated() const
{
    BitVector one(width_, 1);
    return add(bit_not(), one);
}

BitVector
BitVector::mul(const BitVector& a, const BitVector& b)
{
    CASCADE_CHECK(a.width_ == b.width_);
    BitVector out(a.width_);
    uint64_t* ow = out.words();
    const uint64_t* aw = a.words();
    const uint64_t* bw = b.words();
    const uint32_t n = out.num_words();
    for (uint32_t i = 0; i < n; ++i) {
        if (aw[i] == 0) {
            continue;
        }
        uint64_t carry = 0;
        for (uint32_t j = 0; i + j < n; ++j) {
            const unsigned __int128 p =
                static_cast<unsigned __int128>(aw[i]) * bw[j] +
                ow[i + j] + carry;
            ow[i + j] = static_cast<uint64_t>(p);
            carry = static_cast<uint64_t>(p >> 64);
        }
    }
    out.mask_top();
    return out;
}

void
BitVector::udivrem(const BitVector& a, const BitVector& b,
                   BitVector* quot, BitVector* rem)
{
    CASCADE_CHECK(a.width_ == b.width_);
    const uint32_t w = a.width_;
    if (b.is_zero()) {
        // Two-state substitute for Verilog's x result.
        *quot = BitVector(w, 0);
        *rem = BitVector(w, 0);
        return;
    }
    if (a.num_words() == 1) {
        *quot = BitVector(w, a.word(0) / b.word(0));
        *rem = BitVector(w, a.word(0) % b.word(0));
        return;
    }
    // Binary long division, MSB first.
    BitVector q(w, 0);
    BitVector r(w, 0);
    for (int32_t i = static_cast<int32_t>(w) - 1; i >= 0; --i) {
        r = r.shl(1);
        r.set_bit(0, a.bit(static_cast<uint32_t>(i)));
        if (ule(b, r)) {
            r = sub(r, b);
            q.set_bit(static_cast<uint32_t>(i), true);
        }
    }
    *quot = std::move(q);
    *rem = std::move(r);
}

BitVector
BitVector::divu(const BitVector& a, const BitVector& b)
{
    BitVector q, r;
    udivrem(a, b, &q, &r);
    return q;
}

BitVector
BitVector::remu(const BitVector& a, const BitVector& b)
{
    BitVector q, r;
    udivrem(a, b, &q, &r);
    return r;
}

BitVector
BitVector::divs(const BitVector& a, const BitVector& b)
{
    const bool na = a.sign_bit();
    const bool nb = b.sign_bit();
    const BitVector pa = na ? a.negated() : a;
    const BitVector pb = nb ? b.negated() : b;
    BitVector q = divu(pa, pb);
    return (na != nb) ? q.negated() : q;
}

BitVector
BitVector::rems(const BitVector& a, const BitVector& b)
{
    // Verilog: result takes the sign of the first operand.
    const bool na = a.sign_bit();
    const BitVector pa = na ? a.negated() : a;
    const BitVector pb = b.sign_bit() ? b.negated() : b;
    BitVector r = remu(pa, pb);
    return na ? r.negated() : r;
}

BitVector
BitVector::pow(const BitVector& a, const BitVector& b)
{
    BitVector result(a.width_, 1);
    BitVector base = a;
    // Exponent is treated as unsigned; cap iterations at the exponent's
    // bit count, relying on wrap-around for large values.
    for (uint32_t i = 0; i < b.width_; ++i) {
        if (b.bit(i)) {
            result = mul(result, base);
        }
        base = mul(base, base);
    }
    return result;
}

BitVector
BitVector::bit_and(const BitVector& a, const BitVector& b)
{
    CASCADE_CHECK(a.width_ == b.width_);
    BitVector out(a.width_);
    for (uint32_t i = 0; i < out.num_words(); ++i) {
        out.words()[i] = a.words()[i] & b.words()[i];
    }
    return out;
}

BitVector
BitVector::bit_or(const BitVector& a, const BitVector& b)
{
    CASCADE_CHECK(a.width_ == b.width_);
    BitVector out(a.width_);
    for (uint32_t i = 0; i < out.num_words(); ++i) {
        out.words()[i] = a.words()[i] | b.words()[i];
    }
    return out;
}

BitVector
BitVector::bit_xor(const BitVector& a, const BitVector& b)
{
    CASCADE_CHECK(a.width_ == b.width_);
    BitVector out(a.width_);
    for (uint32_t i = 0; i < out.num_words(); ++i) {
        out.words()[i] = a.words()[i] ^ b.words()[i];
    }
    return out;
}

BitVector
BitVector::bit_not() const
{
    BitVector out(width_);
    for (uint32_t i = 0; i < num_words(); ++i) {
        out.words()[i] = ~words()[i];
    }
    out.mask_top();
    return out;
}

BitVector
BitVector::shl(uint64_t amount) const
{
    BitVector out(width_);
    if (amount >= width_) {
        return out;
    }
    const uint32_t word_shift = static_cast<uint32_t>(amount / 64);
    const uint32_t bit_shift = static_cast<uint32_t>(amount % 64);
    uint64_t* ow = out.words();
    const uint64_t* iw = words();
    for (uint32_t i = num_words(); i-- > word_shift;) {
        const uint32_t src = i - word_shift;
        uint64_t v = iw[src] << bit_shift;
        if (bit_shift != 0 && src > 0) {
            v |= iw[src - 1] >> (64 - bit_shift);
        }
        ow[i] = v;
    }
    out.mask_top();
    return out;
}

BitVector
BitVector::lshr(uint64_t amount) const
{
    if (amount >= width_) {
        return BitVector(width_, 0);
    }
    return slice(static_cast<uint32_t>(amount), width_);
}

BitVector
BitVector::ashr(uint64_t amount) const
{
    const bool sign = sign_bit();
    if (amount >= width_) {
        return sign ? all_ones(width_) : BitVector(width_, 0);
    }
    BitVector out = lshr(amount);
    if (sign) {
        for (uint32_t i = width_ - static_cast<uint32_t>(amount); i < width_;
             ++i) {
            out.set_bit(i, true);
        }
    }
    return out;
}

bool
BitVector::eq(const BitVector& a, const BitVector& b)
{
    CASCADE_CHECK(a.width_ == b.width_);
    for (uint32_t i = 0; i < a.num_words(); ++i) {
        if (a.words()[i] != b.words()[i]) {
            return false;
        }
    }
    return true;
}

bool
BitVector::ult(const BitVector& a, const BitVector& b)
{
    CASCADE_CHECK(a.width_ == b.width_);
    for (uint32_t i = a.num_words(); i-- > 0;) {
        if (a.words()[i] != b.words()[i]) {
            return a.words()[i] < b.words()[i];
        }
    }
    return false;
}

bool
BitVector::ule(const BitVector& a, const BitVector& b)
{
    return !ult(b, a);
}

bool
BitVector::slt(const BitVector& a, const BitVector& b)
{
    const bool sa = a.sign_bit();
    const bool sb = b.sign_bit();
    if (sa != sb) {
        return sa;
    }
    return ult(a, b);
}

bool
BitVector::sle(const BitVector& a, const BitVector& b)
{
    return !slt(b, a);
}

bool
BitVector::reduce_and() const
{
    return eq(*this, all_ones(width_));
}

bool
BitVector::reduce_xor() const
{
    uint64_t acc = 0;
    for (uint32_t i = 0; i < num_words(); ++i) {
        acc ^= words()[i];
    }
    return __builtin_parityll(acc);
}

BitVector
BitVector::concat(const BitVector& msbs, const BitVector& lsbs)
{
    BitVector out(msbs.width_ + lsbs.width_);
    out.set_slice(0, lsbs);
    out.set_slice(lsbs.width_, msbs);
    return out;
}

std::string
BitVector::to_bin_string() const
{
    std::string out;
    out.reserve(width_);
    for (uint32_t i = width_; i-- > 0;) {
        out += bit(i) ? '1' : '0';
    }
    return out;
}

std::string
BitVector::to_hex_string() const
{
    static const char digits[] = "0123456789abcdef";
    const uint32_t nibbles = (width_ + 3) / 4;
    std::string out;
    out.reserve(nibbles);
    for (uint32_t i = nibbles; i-- > 0;) {
        const uint64_t nib = slice(i * 4, 4).to_uint64();
        out += digits[nib];
    }
    return out;
}

std::string
BitVector::to_dec_string() const
{
    if (is_zero()) {
        return "0";
    }
    BitVector tmp = *this;
    std::string out;
    while (!tmp.is_zero()) {
        out += static_cast<char>('0' + tmp.divmod_small(10));
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
BitVector::to_signed_dec_string() const
{
    if (sign_bit()) {
        return "-" + negated().to_dec_string();
    }
    return to_dec_string();
}

bool
BitVector::operator==(const BitVector& other) const
{
    if (width_ != other.width_) {
        return false;
    }
    return eq(*this, other);
}

size_t
BitVector::hash() const
{
    size_t h = std::hash<uint32_t>{}(width_);
    for (uint32_t i = 0; i < num_words(); ++i) {
        h ^= std::hash<uint64_t>{}(words()[i]) + 0x9e3779b97f4a7c15ull +
             (h << 6) + (h >> 2);
    }
    return h;
}

void
BitVector::mask_top()
{
    const uint32_t rem = width_ % 64;
    if (rem != 0) {
        words()[num_words() - 1] &= (~uint64_t{0}) >> (64 - rem);
    }
}

uint32_t
BitVector::divmod_small(uint32_t divisor)
{
    CASCADE_CHECK(divisor != 0);
    uint64_t rem = 0;
    uint64_t* w = words();
    for (uint32_t i = num_words(); i-- > 0;) {
        const unsigned __int128 cur =
            (static_cast<unsigned __int128>(rem) << 64) | w[i];
        w[i] = static_cast<uint64_t>(cur / divisor);
        rem = static_cast<uint64_t>(cur % divisor);
    }
    return static_cast<uint32_t>(rem);
}

void
BitVector::muladd_small(uint32_t factor, uint32_t addend)
{
    uint64_t carry = addend;
    uint64_t* w = words();
    for (uint32_t i = 0; i < num_words(); ++i) {
        const unsigned __int128 cur =
            static_cast<unsigned __int128>(w[i]) * factor + carry;
        w[i] = static_cast<uint64_t>(cur);
        carry = static_cast<uint64_t>(cur >> 64);
    }
    mask_top();
}

} // namespace cascade
