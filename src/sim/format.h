/// \file
/// $display/$write format-string rendering, shared by the software engine
/// (which formats during interpretation) and the hardware engine's software
/// stub (which formats values read back over MMIO, per §5.2 of the paper).

#ifndef CASCADE_SIM_FORMAT_H
#define CASCADE_SIM_FORMAT_H

#include <string>
#include <vector>

#include "common/bitvector.h"

namespace cascade::sim {

/// One $display argument: either a literal string chunk (from a string
/// literal argument) or a formatted value.
struct DisplayValue {
    BitVector value;
    bool is_signed = false;
};

/// Renders a Verilog format string against a value list. Supports %d, %0d,
/// %h/%x, %b, %o, %c, %t/%0t, %%; unknown specifiers pass through. Values
/// beyond
/// the format specifiers are ignored; missing values render as 0.
std::string format_display(const std::string& fmt,
                           const std::vector<DisplayValue>& values);

/// Renders the no-format-string case: values as decimal, space-separated.
std::string format_values(const std::vector<DisplayValue>& values);

} // namespace cascade::sim

#endif // CASCADE_SIM_FORMAT_H
