#include "verilog/elaborate.h"

#include <algorithm>

#include "common/check.h"

namespace cascade::verilog {

// ---------------------------------------------------------------------------
// ModuleLibrary
// ---------------------------------------------------------------------------

bool
ModuleLibrary::add(std::unique_ptr<ModuleDecl> decl)
{
    CASCADE_CHECK(decl != nullptr);
    const std::string name = decl->name;
    const bool fresh = modules_.find(name) == modules_.end();
    modules_[name] = std::move(decl);
    return fresh;
}

const ModuleDecl*
ModuleLibrary::find(const std::string& name) const
{
    const auto it = modules_.find(name);
    return it == modules_.end() ? nullptr : it->second.get();
}

bool
ModuleLibrary::remove(const std::string& name)
{
    return modules_.erase(name) != 0;
}

// ---------------------------------------------------------------------------
// ElaboratedModule
// ---------------------------------------------------------------------------

const NetInfo*
ElaboratedModule::find_net(const std::string& name) const
{
    const auto it = net_index.find(name);
    return it == net_index.end() ? nullptr : &nets[it->second];
}

uint32_t
ElaboratedModule::net_id(const std::string& name) const
{
    const auto it = net_index.find(name);
    CASCADE_CHECK(it != net_index.end());
    return it->second;
}

// ---------------------------------------------------------------------------
// Constant expression evaluation
// ---------------------------------------------------------------------------

namespace {

/// Recursive worker; \p ok is cleared on the first failure.
BitVector
const_eval(const Expr& expr,
           const std::unordered_map<std::string, BitVector>& env,
           Diagnostics* diags, bool* ok)
{
    if (!*ok) {
        return BitVector(1, 0);
    }
    switch (expr.kind) {
      case ExprKind::Number:
        return static_cast<const NumberExpr&>(expr).value;
      case ExprKind::Identifier: {
        const auto& id = static_cast<const IdentifierExpr&>(expr);
        if (id.simple()) {
            const auto it = env.find(id.path[0]);
            if (it != env.end()) {
                return it->second;
            }
        }
        diags->error(expr.loc, "'" + id.full_name() +
                                   "' is not a constant (parameters and "
                                   "literals only)");
        *ok = false;
        return BitVector(1, 0);
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(expr);
        const BitVector v = const_eval(*u.operand, env, diags, ok);
        if (!*ok) {
            return v;
        }
        switch (u.op) {
          case UnaryOp::Plus: return v;
          case UnaryOp::Minus: return v.negated();
          case UnaryOp::LogicalNot: return BitVector::from_bool(v.is_zero());
          case UnaryOp::BitwiseNot: return v.bit_not();
          case UnaryOp::ReduceAnd:
            return BitVector::from_bool(v.reduce_and());
          case UnaryOp::ReduceOr:
            return BitVector::from_bool(v.reduce_or());
          case UnaryOp::ReduceXor:
            return BitVector::from_bool(v.reduce_xor());
          case UnaryOp::ReduceNand:
            return BitVector::from_bool(!v.reduce_and());
          case UnaryOp::ReduceNor:
            return BitVector::from_bool(!v.reduce_or());
          case UnaryOp::ReduceXnor:
            return BitVector::from_bool(!v.reduce_xor());
        }
        CASCADE_UNREACHABLE();
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(expr);
        BitVector l = const_eval(*b.lhs, env, diags, ok);
        BitVector r = const_eval(*b.rhs, env, diags, ok);
        if (!*ok) {
            return l;
        }
        const uint32_t w = std::max(l.width(), r.width());
        // Constant contexts in practice involve 32-bit parameters; a plain
        // max-width extension matches what tools do for genvar math.
        BitVector le = l.resized(w);
        BitVector re = r.resized(w);
        switch (b.op) {
          case BinaryOp::Add: return BitVector::add(le, re);
          case BinaryOp::Sub: return BitVector::sub(le, re);
          case BinaryOp::Mul: return BitVector::mul(le, re);
          case BinaryOp::Div: return BitVector::divu(le, re);
          case BinaryOp::Mod: return BitVector::remu(le, re);
          case BinaryOp::Pow: return BitVector::pow(le, re);
          case BinaryOp::Eq:
          case BinaryOp::CaseEq:
            return BitVector::from_bool(BitVector::eq(le, re));
          case BinaryOp::Neq:
          case BinaryOp::CaseNeq:
            return BitVector::from_bool(!BitVector::eq(le, re));
          case BinaryOp::LogicalAnd:
            return BitVector::from_bool(!le.is_zero() && !re.is_zero());
          case BinaryOp::LogicalOr:
            return BitVector::from_bool(!le.is_zero() || !re.is_zero());
          case BinaryOp::Lt:
            return BitVector::from_bool(BitVector::ult(le, re));
          case BinaryOp::Leq:
            return BitVector::from_bool(BitVector::ule(le, re));
          case BinaryOp::Gt:
            return BitVector::from_bool(BitVector::ult(re, le));
          case BinaryOp::Geq:
            return BitVector::from_bool(BitVector::ule(re, le));
          case BinaryOp::Shl: return l.shl(r.to_uint64());
          case BinaryOp::Shr: return l.lshr(r.to_uint64());
          case BinaryOp::AShr: return l.ashr(r.to_uint64());
          case BinaryOp::BitAnd: return BitVector::bit_and(le, re);
          case BinaryOp::BitOr: return BitVector::bit_or(le, re);
          case BinaryOp::BitXor: return BitVector::bit_xor(le, re);
          case BinaryOp::BitXnor:
            return BitVector::bit_xor(le, re).bit_not();
        }
        CASCADE_UNREACHABLE();
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const TernaryExpr&>(expr);
        const BitVector c = const_eval(*t.cond, env, diags, ok);
        if (!*ok) {
            return c;
        }
        return c.to_bool() ? const_eval(*t.then_expr, env, diags, ok)
                           : const_eval(*t.else_expr, env, diags, ok);
      }
      case ExprKind::Concat: {
        const auto& c = static_cast<const ConcatExpr&>(expr);
        BitVector acc(1, 0);
        bool first = true;
        for (const auto& e : c.elements) {
            BitVector v = const_eval(*e, env, diags, ok);
            if (!*ok) {
                return acc;
            }
            acc = first ? std::move(v) : BitVector::concat(acc, v);
            first = false;
        }
        return acc;
      }
      case ExprKind::Replicate: {
        const auto& rep = static_cast<const ReplicateExpr&>(expr);
        const BitVector n = const_eval(*rep.count, env, diags, ok);
        const BitVector body = const_eval(*rep.body, env, diags, ok);
        if (!*ok) {
            return body;
        }
        const uint64_t count = n.to_uint64();
        if (count == 0 || count > 4096) {
            diags->error(expr.loc, "replication count out of range");
            *ok = false;
            return body;
        }
        BitVector acc = body;
        for (uint64_t i = 1; i < count; ++i) {
            acc = BitVector::concat(acc, body);
        }
        return acc;
      }
      default:
        diags->error(expr.loc, "expression is not constant");
        *ok = false;
        return BitVector(1, 0);
    }
}

} // namespace

std::optional<BitVector>
eval_const_expr(const Expr& expr,
                const std::unordered_map<std::string, BitVector>& env,
                Diagnostics* diags)
{
    bool ok = true;
    BitVector v = const_eval(expr, env, diags, &ok);
    if (!ok) {
        return std::nullopt;
    }
    return v;
}

// ---------------------------------------------------------------------------
// Elaborator
// ---------------------------------------------------------------------------

Elaborator::Elaborator(Diagnostics* diags, const ModuleLibrary* library)
    : diags_(diags), library_(library)
{
    CASCADE_CHECK(diags != nullptr);
}

std::unique_ptr<ElaboratedModule>
Elaborator::elaborate(const ModuleDecl& decl,
                      const std::vector<Connection>& param_overrides)
{
    auto em = std::make_unique<ElaboratedModule>();
    em->name = decl.name;
    em->decl = decl.clone();
    const size_t errors_before = diags_->error_count();

    if (!bind_parameters(*em->decl, param_overrides, em.get())) {
        return nullptr;
    }

    for (const Port& port : em->decl->ports) {
        if (!add_net(port, em.get())) {
            return nullptr;
        }
    }
    for (const auto& item : em->decl->items) {
        if (item->kind == ItemKind::NetDecl) {
            const auto& nd = static_cast<const NetDecl&>(*item);
            for (const auto& d : nd.decls) {
                if (!add_net(nd, d, em.get())) {
                    return nullptr;
                }
            }
        } else if (item->kind == ItemKind::FunctionDecl) {
            const auto& fn = static_cast<const FunctionDecl&>(*item);
            if (em->functions.count(fn.name) != 0) {
                diags_->error(fn.loc,
                              "duplicate function '" + fn.name + "'");
                return nullptr;
            }
            em->functions[fn.name] = &fn;
        }
    }

    if (!check_items(em.get()) || diags_->error_count() != errors_before) {
        return nullptr;
    }
    return em;
}

bool
Elaborator::bind_parameters(const ModuleDecl& decl,
                            const std::vector<Connection>& overrides,
                            ElaboratedModule* em)
{
    // Collect overridable (header) parameter names in declaration order.
    std::vector<const ParamDecl*> header;
    for (const auto& p : decl.header_params) {
        header.push_back(static_cast<const ParamDecl*>(p.get()));
    }
    // Body 'parameter' declarations are also overridable by name.
    std::vector<const ParamDecl*> body;
    for (const auto& item : decl.items) {
        if (item->kind == ItemKind::ParamDecl) {
            body.push_back(static_cast<const ParamDecl*>(item.get()));
        }
    }

    // Resolve override expressions (they are constants in the parent's
    // scope; by the time they reach us they must be literal).
    std::unordered_map<std::string, BitVector> given;
    size_t positional = 0;
    for (const auto& c : overrides) {
        if (c.expr == nullptr) {
            continue;
        }
        auto v = eval_const_expr(*c.expr, {}, diags_);
        if (!v.has_value()) {
            return false;
        }
        std::string name = c.name;
        if (name.empty()) {
            if (positional >= header.size()) {
                diags_->error(c.expr->loc,
                              "too many positional parameter overrides for "
                              "module '" + decl.name + "'");
                return false;
            }
            name = header[positional++]->name;
        }
        given[name] = *std::move(v);
    }

    // Bind header parameters first, then walk body items in order so later
    // parameters may reference earlier ones.
    auto bind_one = [&](const ParamDecl& p, bool overridable) -> bool {
        if (em->params.count(p.name) != 0) {
            diags_->error(p.loc, "duplicate parameter '" + p.name + "'");
            return false;
        }
        BitVector value;
        const auto it = given.find(p.name);
        if (!p.local && overridable && it != given.end()) {
            value = it->second;
            given.erase(it);
        } else {
            if (p.value == nullptr) {
                diags_->error(p.loc,
                              "parameter '" + p.name + "' has no value");
                return false;
            }
            auto v = eval_const_expr(*p.value, em->params, diags_);
            if (!v.has_value()) {
                return false;
            }
            value = *std::move(v);
        }
        if (p.range.valid()) {
            uint32_t width = 0, lsb = 0;
            if (!resolve_range(p.range, *em, &width, &lsb)) {
                return false;
            }
            value = value.resized(width);
        }
        em->params[p.name] = std::move(value);
        em->param_signed[p.name] = p.is_signed;
        return true;
    };

    for (const ParamDecl* p : header) {
        if (!bind_one(*p, /*overridable=*/true)) {
            return false;
        }
    }
    for (const ParamDecl* p : body) {
        if (!bind_one(*p, /*overridable=*/!p->local)) {
            return false;
        }
    }
    for (const auto& [name, value] : given) {
        (void)value;
        diags_->error(decl.loc, "module '" + decl.name +
                                    "' has no overridable parameter '" +
                                    name + "'");
        return false;
    }
    return true;
}

bool
Elaborator::resolve_range(const Range& range, const ElaboratedModule& em,
                          uint32_t* width, uint32_t* lsb)
{
    if (!range.valid()) {
        *width = 1;
        *lsb = 0;
        return true;
    }
    auto msb_v = eval_const_expr(*range.msb, em.params, diags_);
    auto lsb_v = eval_const_expr(*range.lsb, em.params, diags_);
    if (!msb_v.has_value() || !lsb_v.has_value()) {
        return false;
    }
    const uint64_t msb = msb_v->to_uint64();
    const uint64_t lsb64 = lsb_v->to_uint64();
    if (msb < lsb64) {
        diags_->error(range.msb->loc,
                      "ascending ranges [lsb:msb] are not supported");
        return false;
    }
    if (msb - lsb64 + 1 > (1u << 20)) {
        diags_->error(range.msb->loc, "range too wide");
        return false;
    }
    *width = static_cast<uint32_t>(msb - lsb64 + 1);
    *lsb = static_cast<uint32_t>(lsb64);
    return true;
}

bool
Elaborator::add_net(const Port& port, ElaboratedModule* em)
{
    if (em->net_index.count(port.name) != 0 ||
        em->params.count(port.name) != 0) {
        diags_->error(port.loc, "duplicate declaration of '" + port.name +
                                    "'");
        return false;
    }
    if (port.dir == PortDir::Inout) {
        diags_->error(port.loc,
                      "inout ports are not supported (see DESIGN.md §5)");
        return false;
    }
    NetInfo net;
    net.name = port.name;
    net.is_signed = port.is_signed;
    net.is_reg = port.is_reg;
    net.is_port = true;
    net.dir = port.dir;
    if (!resolve_range(port.range, *em, &net.width, &net.lsb)) {
        return false;
    }
    if (port.dir == PortDir::Input && port.is_reg) {
        diags_->error(port.loc, "input ports cannot be declared reg");
        return false;
    }
    em->net_index[net.name] = static_cast<uint32_t>(em->nets.size());
    em->nets.push_back(std::move(net));
    return true;
}

bool
Elaborator::add_net(const NetDecl& decl, const NetDeclarator& d,
                    ElaboratedModule* em)
{
    if (em->net_index.count(d.name) != 0 || em->params.count(d.name) != 0) {
        diags_->error(decl.loc,
                      "duplicate declaration of '" + d.name + "'");
        return false;
    }
    NetInfo net;
    net.name = d.name;
    net.is_signed = decl.is_signed;
    net.is_reg = decl.is_reg;
    if (!resolve_range(decl.range, *em, &net.width, &net.lsb)) {
        return false;
    }
    if (d.array_dim.valid()) {
        if (!decl.is_reg) {
            diags_->error(decl.loc,
                          "arrays must be declared reg ('" + d.name + "')");
            return false;
        }
        if (d.init != nullptr) {
            diags_->error(decl.loc,
                          "array '" + d.name + "' cannot have an "
                          "initializer");
            return false;
        }
        auto lo = eval_const_expr(*d.array_dim.msb, em->params, diags_);
        auto hi = eval_const_expr(*d.array_dim.lsb, em->params, diags_);
        if (!lo.has_value() || !hi.has_value()) {
            return false;
        }
        // Arrays are declared [lo:hi] with lo <= hi (memory convention).
        const uint64_t a = lo->to_uint64();
        const uint64_t b = hi->to_uint64();
        const uint64_t base = std::min(a, b);
        const uint64_t size = std::max(a, b) - base + 1;
        if (size > (1u << 24)) {
            diags_->error(decl.loc, "array too large");
            return false;
        }
        net.array_size = static_cast<uint32_t>(size);
        net.array_base = static_cast<int64_t>(base);
    }
    net.init = d.init.get();
    if (net.init != nullptr && !net.is_reg) {
        diags_->error(decl.loc,
                      "only regs may have declaration initializers");
        return false;
    }
    em->net_index[net.name] = static_cast<uint32_t>(em->nets.size());
    em->nets.push_back(std::move(net));
    return true;
}

bool
Elaborator::check_items(ElaboratedModule* em)
{
    bool ok = true;
    for (const auto& item : em->decl->items) {
        switch (item->kind) {
          case ItemKind::NetDecl: {
            const auto& nd = static_cast<const NetDecl&>(*item);
            for (const auto& d : nd.decls) {
                if (d.init != nullptr) {
                    ok &= check_expr(*d.init, *em, nullptr);
                }
            }
            break;
          }
          case ItemKind::ParamDecl:
            break; // handled in bind_parameters
          case ItemKind::ContinuousAssign: {
            const auto& a = static_cast<const ContinuousAssign&>(*item);
            ok &= check_lvalue(*a.lhs, *em, /*procedural=*/false, nullptr);
            ok &= check_expr(*a.rhs, *em, nullptr);
            break;
          }
          case ItemKind::Always: {
            const auto& ab = static_cast<const AlwaysBlock&>(*item);
            bool has_edge = false;
            bool has_level = false;
            for (const auto& s : ab.sensitivity) {
                ok &= check_expr(*s.signal, *em, nullptr);
                (s.edge == EdgeKind::Level ? has_level : has_edge) = true;
            }
            if (has_edge && has_level) {
                diags_->error(ab.loc,
                              "mixed edge and level sensitivities are not "
                              "supported");
                ok = false;
            }
            if (ab.body != nullptr) {
                ok &= check_stmt(*ab.body, *em, has_edge, nullptr);
            }
            break;
          }
          case ItemKind::Initial: {
            const auto& ib = static_cast<const InitialBlock&>(*item);
            ok &= check_stmt(*ib.body, *em, /*in_seq_block=*/true, nullptr);
            break;
          }
          case ItemKind::Instantiation:
            ok &= check_instantiation(
                static_cast<const Instantiation&>(*item), *em);
            break;
          case ItemKind::FunctionDecl: {
            const auto& fn = static_cast<const FunctionDecl&>(*item);
            if (fn.body != nullptr) {
                ok &= check_stmt(*fn.body, *em, /*in_seq_block=*/true, &fn);
            }
            break;
          }
        }
    }
    return ok;
}

bool
Elaborator::check_stmt(const Stmt& stmt, const ElaboratedModule& em,
                       bool in_seq_block, const FunctionDecl* fn)
{
    bool ok = true;
    switch (stmt.kind) {
      case StmtKind::Block: {
        const auto& b = static_cast<const BlockStmt&>(stmt);
        for (const auto& s : b.stmts) {
            ok &= check_stmt(*s, em, in_seq_block, fn);
        }
        return ok;
      }
      case StmtKind::BlockingAssign: {
        const auto& a = static_cast<const BlockingAssignStmt&>(stmt);
        ok &= check_lvalue(*a.lhs, em, /*procedural=*/true, fn);
        ok &= check_expr(*a.rhs, em, fn);
        return ok;
      }
      case StmtKind::NonblockingAssign: {
        const auto& a = static_cast<const NonblockingAssignStmt&>(stmt);
        if (fn != nullptr) {
            diags_->error(stmt.loc,
                          "nonblocking assignment inside a function");
            ok = false;
        }
        if (!in_seq_block) {
            diags_->warning(stmt.loc,
                            "nonblocking assignment in combinational "
                            "context");
        }
        ok &= check_lvalue(*a.lhs, em, /*procedural=*/true, fn);
        ok &= check_expr(*a.rhs, em, fn);
        return ok;
      }
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        ok &= check_expr(*s.cond, em, fn);
        ok &= check_stmt(*s.then_stmt, em, in_seq_block, fn);
        if (s.else_stmt != nullptr) {
            ok &= check_stmt(*s.else_stmt, em, in_seq_block, fn);
        }
        return ok;
      }
      case StmtKind::Case: {
        const auto& s = static_cast<const CaseStmt&>(stmt);
        ok &= check_expr(*s.subject, em, fn);
        for (const auto& item : s.items) {
            for (const auto& label : item.labels) {
                ok &= check_expr(*label, em, fn);
            }
            ok &= check_stmt(*item.stmt, em, in_seq_block, fn);
        }
        return ok;
      }
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        ok &= check_stmt(*s.init, em, in_seq_block, fn);
        ok &= check_expr(*s.cond, em, fn);
        ok &= check_stmt(*s.step, em, in_seq_block, fn);
        ok &= check_stmt(*s.body, em, in_seq_block, fn);
        return ok;
      }
      case StmtKind::While: {
        const auto& s = static_cast<const WhileStmt&>(stmt);
        ok &= check_expr(*s.cond, em, fn);
        ok &= check_stmt(*s.body, em, in_seq_block, fn);
        return ok;
      }
      case StmtKind::Repeat: {
        const auto& s = static_cast<const RepeatStmt&>(stmt);
        ok &= check_expr(*s.count, em, fn);
        ok &= check_stmt(*s.body, em, in_seq_block, fn);
        return ok;
      }
      case StmtKind::Forever: {
        diags_->error(stmt.loc,
                      "'forever' is not supported outside testbench code");
        return false;
      }
      case StmtKind::SystemTask: {
        const auto& s = static_cast<const SystemTaskStmt&>(stmt);
        if (s.name == "$dumpfile") {
            if (s.args.size() != 1 ||
                s.args[0]->kind != ExprKind::String) {
                diags_->error(stmt.loc,
                              "$dumpfile takes exactly one string "
                              "argument");
                return false;
            }
            return true;
        }
        if (s.name == "$dumpvars" || s.name == "$dumpoff" ||
            s.name == "$dumpon") {
            if (!s.args.empty()) {
                diags_->error(stmt.loc,
                              s.name + " takes no arguments (only "
                              "whole-design dumps are supported)");
                return false;
            }
            return true;
        }
        if (s.name != "$display" && s.name != "$write" &&
            s.name != "$finish" && s.name != "$monitor") {
            diags_->error(stmt.loc,
                          "unknown system task '" + s.name + "'");
            return false;
        }
        for (const auto& arg : s.args) {
            if (arg->kind != ExprKind::String) {
                ok &= check_expr(*arg, em, fn);
            }
        }
        return ok;
      }
      case StmtKind::Null:
        return true;
    }
    CASCADE_UNREACHABLE();
}

bool
Elaborator::check_expr(const Expr& expr, const ElaboratedModule& em,
                       const FunctionDecl* fn)
{
    bool ok = true;
    switch (expr.kind) {
      case ExprKind::Number:
        return true;
      case ExprKind::String:
        diags_->error(expr.loc,
                      "string literals are only valid as $display/$write "
                      "format arguments");
        return false;
      case ExprKind::Identifier: {
        const auto& id = static_cast<const IdentifierExpr&>(expr);
        if (!id.simple()) {
            // Hierarchical reference: needs a library to resolve.
            if (library_ == nullptr) {
                diags_->error(expr.loc,
                              "hierarchical reference '" + id.full_name() +
                                  "' is not allowed here");
                return false;
            }
            if (id.path.size() != 2) {
                diags_->error(expr.loc,
                              "only single-level hierarchical references "
                              "(instance.port) are supported");
                return false;
            }
            // Find the instantiation in this module.
            const Instantiation* inst = nullptr;
            for (const auto& item : em.decl->items) {
                if (item->kind == ItemKind::Instantiation) {
                    const auto& i =
                        static_cast<const Instantiation&>(*item);
                    if (i.instance_name == id.path[0]) {
                        inst = &i;
                        break;
                    }
                }
            }
            if (inst == nullptr) {
                diags_->error(expr.loc,
                              "no instance named '" + id.path[0] + "'");
                return false;
            }
            const ModuleDecl* child = library_->find(inst->module_name);
            if (child == nullptr) {
                return true; // instantiation check reports this
            }
            for (const auto& port : child->ports) {
                if (port.name == id.path[1]) {
                    return true;
                }
            }
            diags_->error(expr.loc, "module '" + inst->module_name +
                                        "' has no port '" + id.path[1] +
                                        "'");
            return false;
        }
        const std::string& name = id.path[0];
        if (fn != nullptr) {
            if (name == fn->name) {
                return true; // the return variable
            }
            for (const auto& d : fn->decls) {
                const auto& nd = static_cast<const NetDecl&>(*d);
                for (const auto& dd : nd.decls) {
                    if (dd.name == name) {
                        return true;
                    }
                }
            }
        }
        if (em.net_index.count(name) != 0 || em.params.count(name) != 0) {
            return true;
        }
        diags_->error(expr.loc, "use of undeclared name '" + name + "'");
        return false;
      }
      case ExprKind::Unary:
        return check_expr(*static_cast<const UnaryExpr&>(expr).operand, em,
                          fn);
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(expr);
        ok &= check_expr(*b.lhs, em, fn);
        ok &= check_expr(*b.rhs, em, fn);
        return ok;
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const TernaryExpr&>(expr);
        ok &= check_expr(*t.cond, em, fn);
        ok &= check_expr(*t.then_expr, em, fn);
        ok &= check_expr(*t.else_expr, em, fn);
        return ok;
      }
      case ExprKind::Concat: {
        const auto& c = static_cast<const ConcatExpr&>(expr);
        for (const auto& e : c.elements) {
            ok &= check_expr(*e, em, fn);
        }
        return ok;
      }
      case ExprKind::Replicate: {
        const auto& r = static_cast<const ReplicateExpr&>(expr);
        if (!eval_const_expr(*r.count, em.params, diags_).has_value()) {
            ok = false;
        }
        ok &= check_expr(*r.body, em, fn);
        return ok;
      }
      case ExprKind::Index: {
        const auto& i = static_cast<const IndexExpr&>(expr);
        ok &= check_expr(*i.base, em, fn);
        ok &= check_expr(*i.index, em, fn);
        return ok;
      }
      case ExprKind::RangeSelect: {
        const auto& r = static_cast<const RangeSelectExpr&>(expr);
        ok &= check_expr(*r.base, em, fn);
        ok &= eval_const_expr(*r.msb, em.params, diags_).has_value();
        ok &= eval_const_expr(*r.lsb, em.params, diags_).has_value();
        return ok;
      }
      case ExprKind::IndexedSelect: {
        const auto& s = static_cast<const IndexedSelectExpr&>(expr);
        ok &= check_expr(*s.base, em, fn);
        ok &= check_expr(*s.offset, em, fn);
        ok &= eval_const_expr(*s.width, em.params, diags_).has_value();
        return ok;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(expr);
        const auto it = em.functions.find(c.callee);
        if (it == em.functions.end()) {
            diags_->error(expr.loc,
                          "call of undeclared function '" + c.callee + "'");
            return false;
        }
        size_t inputs = 0;
        for (size_t i = 0; i < it->second->decls.size(); ++i) {
            if (it->second->decl_is_input[i]) {
                const auto& nd =
                    static_cast<const NetDecl&>(*it->second->decls[i]);
                inputs += nd.decls.size();
            }
        }
        if (c.args.size() != inputs) {
            diags_->error(expr.loc,
                          "function '" + c.callee + "' expects " +
                              std::to_string(inputs) + " arguments, got " +
                              std::to_string(c.args.size()));
            ok = false;
        }
        for (const auto& a : c.args) {
            ok &= check_expr(*a, em, fn);
        }
        return ok;
      }
      case ExprKind::SystemCall: {
        const auto& s = static_cast<const SystemCallExpr&>(expr);
        if (s.callee == "$time") {
            if (!s.args.empty()) {
                diags_->error(expr.loc, "$time takes no arguments");
                return false;
            }
            return true;
        }
        if (s.callee == "$signed" || s.callee == "$unsigned") {
            if (s.args.size() != 1) {
                diags_->error(expr.loc,
                              s.callee + " takes exactly one argument");
                return false;
            }
            return check_expr(*s.args[0], em, fn);
        }
        diags_->error(expr.loc,
                      "unknown system function '" + s.callee + "'");
        return false;
      }
    }
    CASCADE_UNREACHABLE();
}

bool
Elaborator::check_lvalue(const Expr& expr, const ElaboratedModule& em,
                         bool procedural, const FunctionDecl* fn)
{
    switch (expr.kind) {
      case ExprKind::Identifier: {
        const auto& id = static_cast<const IdentifierExpr&>(expr);
        if (!id.simple()) {
            // Writing a child instance's input: legal only pre-transform.
            if (library_ == nullptr) {
                diags_->error(expr.loc,
                              "hierarchical assignment target '" +
                                  id.full_name() + "' is not allowed here");
                return false;
            }
            return check_expr(expr, em, fn);
        }
        const std::string& name = id.path[0];
        if (fn != nullptr) {
            if (name == fn->name) {
                return true;
            }
            for (const auto& d : fn->decls) {
                const auto& nd = static_cast<const NetDecl&>(*d);
                for (const auto& dd : nd.decls) {
                    if (dd.name == name) {
                        return true;
                    }
                }
            }
        }
        const NetInfo* net = em.find_net(name);
        if (net == nullptr) {
            diags_->error(expr.loc,
                          "assignment to undeclared name '" + name + "'");
            return false;
        }
        if (net->is_port && net->dir == PortDir::Input) {
            diags_->error(expr.loc,
                          "assignment to input port '" + name + "'");
            return false;
        }
        if (procedural && !net->is_reg) {
            diags_->error(expr.loc, "procedural assignment to wire '" +
                                        name + "' (declare it reg)");
            return false;
        }
        if (!procedural && net->is_reg) {
            diags_->error(expr.loc, "continuous assignment to reg '" +
                                        name + "' (use always block)");
            return false;
        }
        return true;
      }
      case ExprKind::Index: {
        const auto& i = static_cast<const IndexExpr&>(expr);
        return check_lvalue(*i.base, em, procedural, fn) &&
               check_expr(*i.index, em, fn);
      }
      case ExprKind::RangeSelect: {
        const auto& r = static_cast<const RangeSelectExpr&>(expr);
        return check_lvalue(*r.base, em, procedural, fn) &&
               eval_const_expr(*r.msb, em.params, diags_).has_value() &&
               eval_const_expr(*r.lsb, em.params, diags_).has_value();
      }
      case ExprKind::IndexedSelect: {
        const auto& s = static_cast<const IndexedSelectExpr&>(expr);
        return check_lvalue(*s.base, em, procedural, fn) &&
               check_expr(*s.offset, em, fn) &&
               eval_const_expr(*s.width, em.params, diags_).has_value();
      }
      case ExprKind::Concat: {
        const auto& c = static_cast<const ConcatExpr&>(expr);
        bool ok = true;
        for (const auto& e : c.elements) {
            ok &= check_lvalue(*e, em, procedural, fn);
        }
        return ok;
      }
      default:
        diags_->error(expr.loc, "expression is not a valid assignment "
                                "target");
        return false;
    }
}

bool
Elaborator::check_instantiation(const Instantiation& inst,
                                const ElaboratedModule& em)
{
    if (library_ == nullptr) {
        diags_->error(inst.loc,
                      "module instantiation is not allowed in this context");
        return false;
    }
    const ModuleDecl* child = library_->find(inst.module_name);
    if (child == nullptr) {
        diags_->error(inst.loc,
                      "instantiation of unknown module '" +
                          inst.module_name + "'");
        return false;
    }
    bool ok = true;
    bool positional = false;
    for (size_t i = 0; i < inst.ports.size(); ++i) {
        const Connection& c = inst.ports[i];
        if (c.name.empty()) {
            positional = true;
            if (i >= child->ports.size()) {
                diags_->error(inst.loc, "too many port connections for '" +
                                            inst.module_name + "'");
                return false;
            }
        } else {
            if (positional) {
                diags_->error(inst.loc,
                              "cannot mix positional and named connections");
                return false;
            }
            bool found = false;
            for (const auto& p : child->ports) {
                if (p.name == c.name) {
                    found = true;
                    break;
                }
            }
            if (!found) {
                diags_->error(inst.loc, "module '" + inst.module_name +
                                            "' has no port '" + c.name +
                                            "'");
                ok = false;
            }
        }
        if (c.expr != nullptr) {
            ok &= check_expr(*c.expr, em, nullptr);
        }
    }
    return ok;
}

// ---------------------------------------------------------------------------
// ExprTyper
// ---------------------------------------------------------------------------

uint32_t
ExprTyper::self_width(const Expr& expr) const
{
    switch (expr.kind) {
      case ExprKind::Number:
        return static_cast<const NumberExpr&>(expr).value.width();
      case ExprKind::String:
        return 1;
      case ExprKind::Identifier: {
        const auto& id = static_cast<const IdentifierExpr&>(expr);
        if (id.simple()) {
            if (locals_ != nullptr) {
                const uint32_t w = locals_->local_width(id.path[0]);
                if (w != 0) {
                    return w;
                }
            }
            if (const NetInfo* net = em_.find_net(id.path[0])) {
                return net->width;
            }
            const auto it = em_.params.find(id.path[0]);
            if (it != em_.params.end()) {
                return it->second.width();
            }
        }
        return 1;
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(expr);
        switch (u.op) {
          case UnaryOp::Plus:
          case UnaryOp::Minus:
          case UnaryOp::BitwiseNot:
            return self_width(*u.operand);
          default:
            return 1; // reductions and !
        }
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(expr);
        switch (b.op) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
          case BinaryOp::Mul:
          case BinaryOp::Div:
          case BinaryOp::Mod:
          case BinaryOp::BitAnd:
          case BinaryOp::BitOr:
          case BinaryOp::BitXor:
          case BinaryOp::BitXnor:
            return std::max(self_width(*b.lhs), self_width(*b.rhs));
          case BinaryOp::Shl:
          case BinaryOp::Shr:
          case BinaryOp::AShr:
          case BinaryOp::Pow:
            return self_width(*b.lhs);
          default:
            return 1; // comparisons and logical connectives
        }
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const TernaryExpr&>(expr);
        return std::max(self_width(*t.then_expr),
                        self_width(*t.else_expr));
      }
      case ExprKind::Concat: {
        const auto& c = static_cast<const ConcatExpr&>(expr);
        uint32_t sum = 0;
        for (const auto& e : c.elements) {
            sum += self_width(*e);
        }
        return std::max(sum, 1u);
      }
      case ExprKind::Replicate: {
        const auto& r = static_cast<const ReplicateExpr&>(expr);
        Diagnostics scratch;
        auto n = eval_const_expr(*r.count, em_.params, &scratch);
        const uint32_t count =
            n.has_value() ? static_cast<uint32_t>(n->to_uint64()) : 1;
        return std::max(count * self_width(*r.body), 1u);
      }
      case ExprKind::Index: {
        // A bit select is 1 bit; an element select of a memory is the
        // memory's element width.
        const auto& i = static_cast<const IndexExpr&>(expr);
        if (i.base->kind == ExprKind::Identifier) {
            const auto& id = static_cast<const IdentifierExpr&>(*i.base);
            if (id.simple()) {
                const NetInfo* net = em_.find_net(id.path[0]);
                if (net != nullptr && net->array_size > 0) {
                    return net->width;
                }
            }
        }
        return 1;
      }
      case ExprKind::RangeSelect: {
        const auto& r = static_cast<const RangeSelectExpr&>(expr);
        Diagnostics scratch;
        auto msb = eval_const_expr(*r.msb, em_.params, &scratch);
        auto lsb = eval_const_expr(*r.lsb, em_.params, &scratch);
        if (msb.has_value() && lsb.has_value() &&
            msb->to_uint64() >= lsb->to_uint64()) {
            return static_cast<uint32_t>(msb->to_uint64() -
                                         lsb->to_uint64() + 1);
        }
        return 1;
      }
      case ExprKind::IndexedSelect: {
        const auto& s = static_cast<const IndexedSelectExpr&>(expr);
        Diagnostics scratch;
        auto w = eval_const_expr(*s.width, em_.params, &scratch);
        return w.has_value()
                   ? std::max(1u, static_cast<uint32_t>(w->to_uint64()))
                   : 1;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(expr);
        const auto it = em_.functions.find(c.callee);
        if (it == em_.functions.end()) {
            return 1;
        }
        if (!it->second->ret_range.valid()) {
            return 1;
        }
        Diagnostics scratch;
        auto msb =
            eval_const_expr(*it->second->ret_range.msb, em_.params,
                            &scratch);
        auto lsb =
            eval_const_expr(*it->second->ret_range.lsb, em_.params,
                            &scratch);
        if (msb.has_value() && lsb.has_value() &&
            msb->to_uint64() >= lsb->to_uint64()) {
            return static_cast<uint32_t>(msb->to_uint64() -
                                         lsb->to_uint64() + 1);
        }
        return 1;
      }
      case ExprKind::SystemCall: {
        const auto& s = static_cast<const SystemCallExpr&>(expr);
        if (s.callee == "$time") {
            return 64;
        }
        if (!s.args.empty()) {
            return self_width(*s.args[0]);
        }
        return 1;
      }
    }
    CASCADE_UNREACHABLE();
}

bool
ExprTyper::is_signed(const Expr& expr) const
{
    switch (expr.kind) {
      case ExprKind::Number:
        return static_cast<const NumberExpr&>(expr).is_signed;
      case ExprKind::Identifier: {
        const auto& id = static_cast<const IdentifierExpr&>(expr);
        if (id.simple()) {
            if (locals_ != nullptr &&
                locals_->local_width(id.path[0]) != 0) {
                return locals_->local_signed(id.path[0]);
            }
            if (const NetInfo* net = em_.find_net(id.path[0])) {
                return net->is_signed;
            }
            const auto it = em_.param_signed.find(id.path[0]);
            if (it != em_.param_signed.end()) {
                return it->second;
            }
        }
        return false;
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(expr);
        switch (u.op) {
          case UnaryOp::Plus:
          case UnaryOp::Minus:
          case UnaryOp::BitwiseNot:
            return is_signed(*u.operand);
          default:
            return false;
        }
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(expr);
        switch (b.op) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
          case BinaryOp::Mul:
          case BinaryOp::Div:
          case BinaryOp::Mod:
          case BinaryOp::BitAnd:
          case BinaryOp::BitOr:
          case BinaryOp::BitXor:
          case BinaryOp::BitXnor:
            return is_signed(*b.lhs) && is_signed(*b.rhs);
          case BinaryOp::Shl:
          case BinaryOp::Shr:
          case BinaryOp::AShr:
          case BinaryOp::Pow:
            return is_signed(*b.lhs);
          default:
            return false;
        }
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const TernaryExpr&>(expr);
        return is_signed(*t.then_expr) && is_signed(*t.else_expr);
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(expr);
        const auto it = em_.functions.find(c.callee);
        return it != em_.functions.end() && it->second->ret_signed;
      }
      case ExprKind::SystemCall: {
        const auto& s = static_cast<const SystemCallExpr&>(expr);
        return s.callee == "$signed";
      }
      default:
        return false;
    }
}

uint32_t
ExprTyper::lvalue_width(const Expr& lhs) const
{
    return self_width(lhs);
}

} // namespace cascade::verilog
