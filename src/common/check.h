/// \file
/// Internal invariant checking. CASCADE_CHECK is for conditions that can
/// never fail unless Cascade itself is broken (gem5's panic()); user-caused
/// failures are reported through Diagnostics instead.

#ifndef CASCADE_COMMON_CHECK_H
#define CASCADE_COMMON_CHECK_H

#include <cstdio>
#include <cstdlib>

namespace cascade {

[[noreturn]] inline void
check_fail(const char* cond, const char* file, int line)
{
    std::fprintf(stderr, "CASCADE_CHECK failed: %s at %s:%d\n",
                 cond, file, line);
    std::abort();
}

} // namespace cascade

#define CASCADE_CHECK(cond)                                                  \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::cascade::check_fail(#cond, __FILE__, __LINE__);                \
        }                                                                    \
    } while (0)

#define CASCADE_UNREACHABLE()                                                \
    ::cascade::check_fail("unreachable", __FILE__, __LINE__)

#endif // CASCADE_COMMON_CHECK_H
