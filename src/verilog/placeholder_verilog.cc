namespace cascade {
// placeholder translation unit; replaced as the verilog subsystem lands.
}
