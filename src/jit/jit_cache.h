/// \file
/// In-process native-code cache for the JIT tier: writes the generated
/// translation unit to an on-disk, content-addressed cache (same FNV digest
/// scheme as the bitstream cache key in service::CompileService), invokes
/// the system compiler into a shared object, and dlopens the result. Warm
/// sessions — including a re-launch after a hypervisor eviction, since the
/// digest depends only on the generated source — skip codegen and compile
/// entirely and pay one dlopen.
///
/// Loaded modules are retained for the life of the process (dlclose while
/// generated code may still be referenced is never safe), keyed by digest
/// so re-adoption of the same design reuses the resident mapping.
///
/// Environment knobs:
///  - CASCADE_JIT_CXX: compiler to use (a nonexistent path disables the
///    tier — the graceful-degradation hook CI exercises).
///  - CASCADE_JIT_CACHE_DIR: cache directory (default under $TMPDIR).

#ifndef CASCADE_JIT_JIT_CACHE_H
#define CASCADE_JIT_JIT_CACHE_H

#include <cstdint>
#include <string>

namespace cascade::jit {

inline constexpr uint32_t kJitAbiVersion = 1;

/// Resolved symbols of one loaded kernel. Pointers stay valid for the
/// process lifetime (modules are never unloaded).
struct JitModule {
    void* handle = nullptr;
    void* (*create)() = nullptr;
    void (*destroy)(void*) = nullptr;
    void (*eval)(void*) = nullptr;
    void (*step)(void*) = nullptr;
    uint64_t (*cycles)(void*) = nullptr;
    void (*set_input)(void*, uint32_t, const uint64_t*) = nullptr;
    void (*get_output)(void*, uint32_t, uint64_t*) = nullptr;
    void (*get_reg)(void*, uint32_t, uint64_t*) = nullptr;
    void (*set_reg)(void*, uint32_t, const uint64_t*) = nullptr;
    void (*get_mem)(void*, uint32_t, uint64_t, uint64_t*) = nullptr;
    void (*set_mem)(void*, uint32_t, uint64_t, const uint64_t*) = nullptr;
    uint64_t (*latch_count)(void*, uint32_t) = nullptr;
};

/// The compiler the builder would invoke ("" when none is usable — the
/// JIT tier is then unavailable and the runtime journals jit.unavailable).
std::string find_compiler();

/// True iff a system compiler is usable right now.
bool compiler_available();

/// The resolved on-disk cache directory (created on demand).
std::string cache_dir();

/// Where the generated source for \p digest is persisted (the CI artifact
/// path; written on every cold build, and backfilled on warm loads).
std::string source_path_for(const std::string& digest);

/// Compiles (or cache-loads) \p source_body and returns the resident
/// module. The digest of the body is returned via \p digest_out and the
/// `cascade_jit_digest` symbol is appended before compiling, so kernels
/// self-identify. \p cache_hit reports whether codegen+compile was skipped
/// (either an in-process resident module or an on-disk .so). On failure
/// returns nullptr with \p error set.
const JitModule* build_module(const std::string& source_body,
                              std::string* digest_out, bool* cache_hit,
                              std::string* error);

} // namespace cascade::jit

#endif // CASCADE_JIT_JIT_CACHE_H
