/// \file
/// FabricExec: the execution surface a "programmed fabric" presents to the
/// hardware engine stub. Two implementations exist: the levelized netlist
/// interpreter (`Bitstream`, the modeled FPGA) and the native-code JIT
/// kernel (`jit::JitKernel`, the same netlist compiled to machine code via
/// the system compiler). HwEngine drives either one through this interface,
/// so MMIO state access, task readback, open-loop scheduling, `$monitor`
/// splicing, and VCD capture are tier-agnostic by construction.
///
/// Profiling and debugger instrumentation have default "not supported"
/// implementations: the JIT tier reports per-register latch counts only,
/// and the debugger swaps in an instrumented Bitstream twin when it arms
/// (see Runtime::rearm_hardware_debug), so a fabric implementation without
/// trigger cells never sees an arm_debug call in practice.

#ifndef CASCADE_FPGA_FABRIC_EXEC_H
#define CASCADE_FPGA_FABRIC_EXEC_H

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "fpga/netlist.h"

namespace cascade::fpga {

class FabricExec {
  public:
    virtual ~FabricExec() = default;

    virtual const Netlist& netlist() const = 0;

    /// @{ Port access by name (cached index lookups available below).
    virtual void set_input(const std::string& name,
                           const BitVector& value) = 0;
    virtual const BitVector& output(const std::string& name) const = 0;
    virtual int input_index(const std::string& name) const = 0;
    virtual int output_index(const std::string& name) const = 0;
    virtual void set_input(int index, const BitVector& value) = 0;
    virtual const BitVector& output(int index) const = 0;
    /// @}

    /// Settles all combinational logic for the current inputs/state.
    virtual void eval_comb() = 0;

    /// One device clock cycle: settle, latch every register whose clock
    /// rose (cascading derived clock domains), settle again.
    virtual void step() = 0;

    virtual uint64_t cycles() const = 0;

    /// @{ Direct state access (used by native mode and tests; the hardware
    /// engine goes through MMIO instead).
    virtual const BitVector& reg_value(const std::string& name) const = 0;
    virtual void set_reg(const std::string& name, const BitVector& value) = 0;
    virtual const BitVector& mem_value(const std::string& name,
                                       uint64_t idx) const = 0;
    virtual void set_mem(const std::string& name, uint64_t idx,
                         const BitVector& value) = 0;
    /// @}

    /// Latch events for register \p name (0 if unknown). Every commit of
    /// a new value into the register counts.
    virtual uint64_t latch_count(const std::string&) const { return 0; }

    /// @{ Source-level activity profiling. Implementations without
    /// per-node instrumentation ignore the toggle and report nothing.
    struct SourceActivity {
        uint64_t evals = 0;   ///< node evaluations attributed to the label
        uint64_t toggles = 0; ///< evaluations that changed the value
    };
    virtual void set_profiling(bool) {}
    virtual bool profiling() const { return false; }
    virtual std::map<std::string, SourceActivity> activity_by_source() const
    {
        return {};
    }
    /// @}

    /// @{ Debugger instrumentation (ILA-style; see Bitstream for the full
    /// contract). The defaults report "never armed, never fired": the
    /// runtime only arms the instrumented Bitstream twin it builds itself.
    struct DebugTrigger {
        uint64_t id = 0;    ///< debugger point id (reported on fire)
        int output = -1;    ///< trigger cell's output index
        bool watch = false; ///< change-detect instead of condition edge
        bool has_prev = false;
        BitVector prev;
    };
    struct DebugProbe {
        std::string name;
        int output = -1;
        uint32_t width = 1;
    };
    struct DebugSample {
        uint64_t cycle = 0; ///< device cycle (cycles())
        std::vector<BitVector> values; ///< parallel to debug_probes()
    };
    virtual void arm_debug(std::vector<DebugTrigger>,
                           std::vector<DebugProbe>, size_t)
    {
    }
    virtual void disarm_debug() {}
    virtual bool debug_armed() const { return false; }
    /// Point id of the first trigger that fired, or 0 while none has.
    virtual uint64_t debug_fired() const { return 0; }
    virtual uint64_t debug_fire_cycle() const { return 0; }
    virtual const std::vector<DebugProbe>& debug_probes() const
    {
        static const std::vector<DebugProbe> kEmpty;
        return kEmpty;
    }
    virtual const std::deque<DebugSample>& debug_ring() const
    {
        static const std::deque<DebugSample> kEmpty;
        return kEmpty;
    }
    /// @}
};

} // namespace cascade::fpga

#endif // CASCADE_FPGA_FABRIC_EXEC_H
