#include "sim/format.h"

#include <cctype>

namespace cascade::sim {

namespace {

std::string
octal_string(const BitVector& v)
{
    const uint32_t digits = (v.width() + 2) / 3;
    std::string out;
    out.reserve(digits);
    for (uint32_t i = digits; i-- > 0;) {
        out += static_cast<char>('0' + v.slice(i * 3, 3).to_uint64());
    }
    return out;
}

std::string
render(const DisplayValue& dv, char spec, bool pad)
{
    switch (spec) {
      case 'd':
      case 't':
        // %t renders simulation time; with no $timeformat support the time
        // unit is the virtual clock tick, so it reduces to unsigned %d.
        if (spec == 'd' && dv.is_signed) {
            return dv.value.to_signed_dec_string();
        }
        if (pad) {
            // %d pads to the widest possible decimal for the bit width.
            std::string max_str =
                BitVector::all_ones(dv.value.width()).to_dec_string();
            std::string s = dv.value.to_dec_string();
            if (s.size() < max_str.size()) {
                s.insert(0, max_str.size() - s.size(), ' ');
            }
            return s;
        }
        return dv.value.to_dec_string();
      case 'h':
      case 'x':
        return dv.value.to_hex_string();
      case 'b':
        return dv.value.to_bin_string();
      case 'o':
        return octal_string(dv.value);
      case 'c': {
        const char c = static_cast<char>(dv.value.to_uint64() & 0x7f);
        return std::string(1, c);
      }
      default:
        return dv.value.to_dec_string();
    }
}

} // namespace

std::string
format_display(const std::string& fmt, const std::vector<DisplayValue>& values)
{
    std::string out;
    size_t next_value = 0;
    for (size_t i = 0; i < fmt.size(); ++i) {
        if (fmt[i] != '%') {
            out += fmt[i];
            continue;
        }
        if (i + 1 >= fmt.size()) {
            out += '%';
            break;
        }
        ++i;
        bool pad = true;
        if (fmt[i] == '0' && i + 1 < fmt.size()) {
            pad = false;
            ++i;
        }
        const char spec = static_cast<char>(
            std::tolower(static_cast<unsigned char>(fmt[i])));
        if (spec == '%') {
            out += '%';
            continue;
        }
        DisplayValue dv;
        if (next_value < values.size()) {
            dv = values[next_value++];
        } else {
            dv.value = BitVector(1, 0);
        }
        out += render(dv, spec, pad);
    }
    return out;
}

std::string
format_values(const std::vector<DisplayValue>& values)
{
    std::string out;
    for (size_t i = 0; i < values.size(); ++i) {
        if (i > 0) {
            out += ' ';
        }
        out += values[i].is_signed ? values[i].value.to_signed_dec_string()
                                   : values[i].value.to_dec_string();
    }
    return out;
}

} // namespace cascade::sim
