#include "ir/rewrite.h"

namespace cascade::ir {

using namespace verilog;

void
for_each_expr(Expr* expr, const std::function<void(Expr*)>& fn)
{
    if (expr == nullptr) {
        return;
    }
    fn(expr);
    switch (expr->kind) {
      case ExprKind::Unary:
        for_each_expr(static_cast<UnaryExpr*>(expr)->operand.get(), fn);
        return;
      case ExprKind::Binary: {
        auto* b = static_cast<BinaryExpr*>(expr);
        for_each_expr(b->lhs.get(), fn);
        for_each_expr(b->rhs.get(), fn);
        return;
      }
      case ExprKind::Ternary: {
        auto* t = static_cast<TernaryExpr*>(expr);
        for_each_expr(t->cond.get(), fn);
        for_each_expr(t->then_expr.get(), fn);
        for_each_expr(t->else_expr.get(), fn);
        return;
      }
      case ExprKind::Concat:
        for (auto& e : static_cast<ConcatExpr*>(expr)->elements) {
            for_each_expr(e.get(), fn);
        }
        return;
      case ExprKind::Replicate: {
        auto* r = static_cast<ReplicateExpr*>(expr);
        for_each_expr(r->count.get(), fn);
        for_each_expr(r->body.get(), fn);
        return;
      }
      case ExprKind::Index: {
        auto* i = static_cast<IndexExpr*>(expr);
        for_each_expr(i->base.get(), fn);
        for_each_expr(i->index.get(), fn);
        return;
      }
      case ExprKind::RangeSelect: {
        auto* r = static_cast<RangeSelectExpr*>(expr);
        for_each_expr(r->base.get(), fn);
        for_each_expr(r->msb.get(), fn);
        for_each_expr(r->lsb.get(), fn);
        return;
      }
      case ExprKind::IndexedSelect: {
        auto* s = static_cast<IndexedSelectExpr*>(expr);
        for_each_expr(s->base.get(), fn);
        for_each_expr(s->offset.get(), fn);
        for_each_expr(s->width.get(), fn);
        return;
      }
      case ExprKind::Call:
        for (auto& a : static_cast<CallExpr*>(expr)->args) {
            for_each_expr(a.get(), fn);
        }
        return;
      case ExprKind::SystemCall:
        for (auto& a : static_cast<SystemCallExpr*>(expr)->args) {
            for_each_expr(a.get(), fn);
        }
        return;
      default:
        return;
    }
}

void
for_each_expr(Stmt* stmt, const std::function<void(Expr*)>& fn)
{
    if (stmt == nullptr) {
        return;
    }
    switch (stmt->kind) {
      case StmtKind::Block:
        for (auto& s : static_cast<BlockStmt*>(stmt)->stmts) {
            for_each_expr(s.get(), fn);
        }
        return;
      case StmtKind::BlockingAssign: {
        auto* a = static_cast<BlockingAssignStmt*>(stmt);
        for_each_expr(a->lhs.get(), fn);
        for_each_expr(a->rhs.get(), fn);
        return;
      }
      case StmtKind::NonblockingAssign: {
        auto* a = static_cast<NonblockingAssignStmt*>(stmt);
        for_each_expr(a->lhs.get(), fn);
        for_each_expr(a->rhs.get(), fn);
        return;
      }
      case StmtKind::If: {
        auto* s = static_cast<IfStmt*>(stmt);
        for_each_expr(s->cond.get(), fn);
        for_each_expr(s->then_stmt.get(), fn);
        for_each_expr(s->else_stmt.get(), fn);
        return;
      }
      case StmtKind::Case: {
        auto* s = static_cast<CaseStmt*>(stmt);
        for_each_expr(s->subject.get(), fn);
        for (auto& item : s->items) {
            for (auto& label : item.labels) {
                for_each_expr(label.get(), fn);
            }
            for_each_expr(item.stmt.get(), fn);
        }
        return;
      }
      case StmtKind::For: {
        auto* s = static_cast<ForStmt*>(stmt);
        for_each_expr(s->init.get(), fn);
        for_each_expr(s->cond.get(), fn);
        for_each_expr(s->step.get(), fn);
        for_each_expr(s->body.get(), fn);
        return;
      }
      case StmtKind::While: {
        auto* s = static_cast<WhileStmt*>(stmt);
        for_each_expr(s->cond.get(), fn);
        for_each_expr(s->body.get(), fn);
        return;
      }
      case StmtKind::Repeat: {
        auto* s = static_cast<RepeatStmt*>(stmt);
        for_each_expr(s->count.get(), fn);
        for_each_expr(s->body.get(), fn);
        return;
      }
      case StmtKind::Forever:
        for_each_expr(static_cast<ForeverStmt*>(stmt)->body.get(), fn);
        return;
      case StmtKind::SystemTask:
        for (auto& a : static_cast<SystemTaskStmt*>(stmt)->args) {
            for_each_expr(a.get(), fn);
        }
        return;
      case StmtKind::Null:
        return;
    }
}

void
for_each_expr(ModuleItem* item, const std::function<void(Expr*)>& fn)
{
    if (item == nullptr) {
        return;
    }
    switch (item->kind) {
      case ItemKind::NetDecl: {
        auto* d = static_cast<NetDecl*>(item);
        for_each_expr(d->range.msb.get(), fn);
        for_each_expr(d->range.lsb.get(), fn);
        for (auto& decl : d->decls) {
            for_each_expr(decl.array_dim.msb.get(), fn);
            for_each_expr(decl.array_dim.lsb.get(), fn);
            for_each_expr(decl.init.get(), fn);
        }
        return;
      }
      case ItemKind::ParamDecl: {
        auto* p = static_cast<ParamDecl*>(item);
        for_each_expr(p->range.msb.get(), fn);
        for_each_expr(p->range.lsb.get(), fn);
        for_each_expr(p->value.get(), fn);
        return;
      }
      case ItemKind::ContinuousAssign: {
        auto* a = static_cast<ContinuousAssign*>(item);
        for_each_expr(a->lhs.get(), fn);
        for_each_expr(a->rhs.get(), fn);
        return;
      }
      case ItemKind::Always: {
        auto* a = static_cast<AlwaysBlock*>(item);
        for (auto& s : a->sensitivity) {
            for_each_expr(s.signal.get(), fn);
        }
        for_each_expr(a->body.get(), fn);
        return;
      }
      case ItemKind::Initial:
        for_each_expr(static_cast<InitialBlock*>(item)->body.get(), fn);
        return;
      case ItemKind::Instantiation: {
        auto* i = static_cast<Instantiation*>(item);
        for (auto& c : i->parameters) {
            for_each_expr(c.expr.get(), fn);
        }
        for (auto& c : i->ports) {
            for_each_expr(c.expr.get(), fn);
        }
        return;
      }
      case ItemKind::FunctionDecl: {
        auto* f = static_cast<FunctionDecl*>(item);
        for (auto& d : f->decls) {
            for_each_expr(d.get(), fn);
        }
        for_each_expr(f->body.get(), fn);
        return;
      }
    }
}

void
for_each_expr(const ModuleItem& item,
              const std::function<void(const Expr&)>& fn)
{
    for_each_expr(const_cast<ModuleItem*>(&item),
                  [&fn](Expr* e) { fn(*e); });
}

void
for_each_expr(const Stmt& stmt, const std::function<void(const Expr&)>& fn)
{
    for_each_expr(const_cast<Stmt*>(&stmt), [&fn](Expr* e) { fn(*e); });
}

void
for_each_expr(const Expr& expr, const std::function<void(const Expr&)>& fn)
{
    for_each_expr(const_cast<Expr*>(&expr), [&fn](Expr* e) { fn(*e); });
}

void
rename_identifiers(
    ModuleDecl* module,
    const std::function<void(std::vector<std::string>* path)>& fn)
{
    auto visit = [&fn](Expr* e) {
        if (e->kind == ExprKind::Identifier) {
            fn(&static_cast<IdentifierExpr*>(e)->path);
        } else if (e->kind == ExprKind::Call) {
            // Function names live outside the identifier namespace but are
            // renamed with the same mapping.
            auto* call = static_cast<CallExpr*>(e);
            std::vector<std::string> path{call->callee};
            fn(&path);
            call->callee = path[0];
        }
    };
    for (auto& p : module->header_params) {
        for_each_expr(p.get(), visit);
    }
    for (auto& port : module->ports) {
        for_each_expr(port.range.msb.get(), visit);
        for_each_expr(port.range.lsb.get(), visit);
    }
    for (auto& item : module->items) {
        for_each_expr(item.get(), visit);
    }
}

} // namespace cascade::ir
