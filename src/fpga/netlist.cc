#include "fpga/netlist.h"

#include <algorithm>

#include "common/check.h"

namespace cascade::fpga {

BitVector
eval_node(const Node& node, const std::vector<BitVector>& argv)
{
    const uint32_t W = node.width;
    switch (node.op) {
      case Op::Const:
        return node.cval;
      case Op::Input:
      case Op::RegQ:
      case Op::MemRead:
        CASCADE_UNREACHABLE(); // sources are handled by the evaluator
      case Op::Not:
        return argv[0].bit_not();
      case Op::And:
        return BitVector::bit_and(argv[0], argv[1]);
      case Op::Or:
        return BitVector::bit_or(argv[0], argv[1]);
      case Op::Xor:
        return BitVector::bit_xor(argv[0], argv[1]);
      case Op::Add:
        return BitVector::add(argv[0], argv[1]);
      case Op::Sub:
        return BitVector::sub(argv[0], argv[1]);
      case Op::Mul:
        return BitVector::mul(argv[0], argv[1]);
      case Op::Divu:
        return BitVector::divu(argv[0], argv[1]);
      case Op::Remu:
        return BitVector::remu(argv[0], argv[1]);
      case Op::Divs:
        return BitVector::divs(argv[0], argv[1]);
      case Op::Rems:
        return BitVector::rems(argv[0], argv[1]);
      case Op::Pow:
        return BitVector::pow(argv[0], argv[1]);
      case Op::Eq:
        return BitVector::from_bool(BitVector::eq(argv[0], argv[1]));
      case Op::Ult:
        return BitVector::from_bool(BitVector::ult(argv[0], argv[1]));
      case Op::Slt:
        return BitVector::from_bool(BitVector::slt(argv[0], argv[1]));
      case Op::Shl:
        return argv[0].shl(argv[1].to_uint64());
      case Op::Lshr:
        return argv[0].lshr(argv[1].to_uint64());
      case Op::Ashr:
        return argv[0].ashr(argv[1].to_uint64());
      case Op::Mux:
        return argv[0].to_bool() ? argv[1] : argv[2];
      case Op::Concat: {
        BitVector acc = argv[0];
        for (size_t i = 1; i < argv.size(); ++i) {
            acc = BitVector::concat(acc, argv[i]);
        }
        return acc;
      }
      case Op::Slice:
        return argv[0].slice(node.aux, W);
      case Op::DynSlice:
        return argv[0]
            .lshr(argv[1].to_uint64())
            .slice(0, W)
            .resized(W);
      case Op::ReduceAnd:
        return BitVector::from_bool(argv[0].reduce_and());
      case Op::ReduceOr:
        return BitVector::from_bool(argv[0].reduce_or());
      case Op::ReduceXor:
        return BitVector::from_bool(argv[0].reduce_xor());
      case Op::ZExt:
        return argv[0].resized(W, false);
      case Op::SExt:
        return argv[0].resized(W, true);
    }
    CASCADE_UNREACHABLE();
}

uint32_t
NetlistBuilder::constant(const BitVector& v)
{
    Node n;
    n.op = Op::Const;
    n.width = v.width();
    n.cval = v;
    return intern(std::move(n));
}

uint32_t
NetlistBuilder::constant(uint32_t width, uint64_t v)
{
    return constant(BitVector(width, v));
}

uint32_t
NetlistBuilder::input(const std::string& name, uint32_t width)
{
    Node n;
    n.op = Op::Input;
    n.width = width;
    n.aux = static_cast<uint32_t>(nl_->inputs.size());
    nl_->nodes.push_back(std::move(n));
    tag_new_nodes();
    const uint32_t id = static_cast<uint32_t>(nl_->nodes.size() - 1);
    nl_->inputs.push_back({name, id, width});
    name_node(id, name);
    return id;
}

uint32_t
NetlistBuilder::reg(const std::string& name, uint32_t width,
                    const BitVector& init)
{
    Node n;
    n.op = Op::RegQ;
    n.width = width;
    n.aux = static_cast<uint32_t>(nl_->regs.size());
    nl_->nodes.push_back(std::move(n));
    tag_new_nodes();
    const uint32_t id = static_cast<uint32_t>(nl_->nodes.size() - 1);
    name_node(id, name);
    RegDef r;
    r.name = name;
    r.width = width;
    r.q = id;
    r.next = id; // hold by default
    r.init = init.resized(width);
    nl_->regs.push_back(std::move(r));
    return id;
}

uint32_t
NetlistBuilder::memory(const std::string& name, uint32_t width,
                       uint32_t size)
{
    nl_->mems.push_back({name, width, size});
    return static_cast<uint32_t>(nl_->mems.size() - 1);
}

uint32_t
NetlistBuilder::mem_read(uint32_t mem_index, uint32_t addr, uint32_t width)
{
    Node n;
    n.op = Op::MemRead;
    n.width = width;
    n.aux = mem_index;
    n.args = {addr};
    // Memory reads are not consed: contents change over time.
    nl_->nodes.push_back(std::move(n));
    tag_new_nodes();
    return static_cast<uint32_t>(nl_->nodes.size() - 1);
}

void
NetlistBuilder::mem_write(uint32_t mem_index, uint32_t addr, uint32_t data,
                          uint32_t enable, uint32_t clock)
{
    nl_->write_ports.push_back({mem_index, addr, data, enable, clock});
}

void
NetlistBuilder::set_reg_next(uint32_t reg_index, uint32_t next,
                             uint32_t clock)
{
    nl_->regs[reg_index].next = next;
    nl_->regs[reg_index].clock = clock;
}

void
NetlistBuilder::output(const std::string& name, uint32_t node)
{
    nl_->outputs.push_back({name, node, nl_->nodes[node].width});
}

uint32_t
NetlistBuilder::make(Op op, uint32_t width, std::vector<uint32_t> args,
                     uint32_t aux)
{
    // Shifts and slices by a constant amount are wiring, not logic:
    // canonicalize them to Slice/Concat so mapping and timing see them as
    // free (a real technology mapper does the same).
    if ((op == Op::Shl || op == Op::Lshr || op == Op::Ashr ||
         op == Op::DynSlice) &&
        args.size() == 2 && is_const(args[1]) && !is_const(args[0])) {
        const uint64_t amount = const_val(args[1]).to_uint64();
        const uint32_t aw = width_of(args[0]);
        switch (op) {
          case Op::DynSlice: {
            if (amount >= aw) {
                return constant(width, 0);
            }
            const uint32_t avail =
                std::min<uint32_t>(width, aw - static_cast<uint32_t>(amount));
            return zext(slice(args[0], static_cast<uint32_t>(amount),
                              avail),
                        width);
          }
          case Op::Lshr: {
            if (amount >= aw) {
                return constant(width, 0);
            }
            return zext(slice(args[0], static_cast<uint32_t>(amount),
                              aw - static_cast<uint32_t>(amount)),
                        width);
          }
          case Op::Shl: {
            if (amount >= width) {
                return constant(width, 0);
            }
            if (amount == 0) {
                return zext(args[0], width);
            }
            const uint32_t keep =
                std::min(aw, width - static_cast<uint32_t>(amount));
            const uint32_t body = slice(args[0], 0, keep);
            const uint32_t zeros =
                constant(static_cast<uint32_t>(amount), 0);
            return zext(make(Op::Concat,
                             keep + static_cast<uint32_t>(amount),
                             {body, zeros}),
                        width);
          }
          case Op::Ashr: {
            if (amount == 0) {
                return sext(args[0], width);
            }
            // Sign-fill from the top bit.
            const uint32_t sign = slice(args[0], aw - 1, 1);
            if (amount >= aw) {
                return sext(sign, width);
            }
            const uint32_t body =
                slice(args[0], static_cast<uint32_t>(amount),
                      aw - static_cast<uint32_t>(amount));
            const uint32_t fill = sext(
                sign, std::max<uint32_t>(
                          1, static_cast<uint32_t>(amount)));
            uint32_t cat = make(Op::Concat, aw, {fill, body});
            return sext(cat, width);
          }
          default:
            break;
        }
    }

    Node n;
    n.op = op;
    n.width = width;
    n.aux = aux;
    n.args = std::move(args);
    const uint32_t folded = try_fold(n);
    if (folded != ~0u) {
        return folded;
    }
    return intern(std::move(n));
}

uint32_t
NetlistBuilder::try_fold(const Node& node)
{
    if (node.op == Op::Const || node.op == Op::Input ||
        node.op == Op::RegQ || node.op == Op::MemRead) {
        return ~0u;
    }
    std::vector<BitVector> argv;
    argv.reserve(node.args.size());
    for (uint32_t a : node.args) {
        if (!is_const(a)) {
            // Identity simplifications on partially-constant nodes.
            if (node.op == Op::Mux && is_const(node.args[0])) {
                return const_val(node.args[0]).to_bool() ? node.args[1]
                                                         : node.args[2];
            }
            if ((node.op == Op::ZExt || node.op == Op::SExt ||
                 node.op == Op::Slice) &&
                node.width == width_of(node.args[0]) && node.aux == 0) {
                return node.args[0];
            }
            return ~0u;
        }
        argv.push_back(const_val(a));
    }
    return constant(eval_node(node, argv));
}

uint32_t
NetlistBuilder::intern(Node node)
{
    uint64_t h = static_cast<uint64_t>(node.op) * 0x9e3779b97f4a7c15ull;
    h ^= node.width + (h << 6);
    h ^= node.aux + (h >> 3);
    for (uint32_t a : node.args) {
        h ^= a + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    if (node.op == Op::Const) {
        h ^= node.cval.hash();
    }
    if (node.op != Op::MemRead) {
        for (uint32_t cand : cse_[h]) {
            const Node& c = nl_->nodes[cand];
            if (c.op == node.op && c.width == node.width &&
                c.aux == node.aux && c.args == node.args &&
                (node.op != Op::Const || c.cval == node.cval)) {
                return cand;
            }
        }
    }
    nl_->nodes.push_back(std::move(node));
    tag_new_nodes();
    const uint32_t id = static_cast<uint32_t>(nl_->nodes.size() - 1);
    cse_[h].push_back(id);
    return id;
}

void
NetlistBuilder::set_source(const std::string& label)
{
    auto it = src_index_.find(label);
    if (it == src_index_.end()) {
        const uint32_t id = static_cast<uint32_t>(nl_->src_labels.size());
        it = src_index_.emplace(label, id).first;
        nl_->src_labels.push_back(label);
    }
    current_src_ = it->second;
}

void
NetlistBuilder::name_node(uint32_t node, const std::string& name)
{
    nl_->node_names.emplace(node, name); // first writer wins
}

void
NetlistBuilder::tag_new_nodes()
{
    while (nl_->node_src.size() < nl_->nodes.size()) {
        nl_->node_src.push_back(current_src_);
    }
}

uint32_t
NetlistBuilder::zext(uint32_t a, uint32_t width)
{
    if (width_of(a) == width) {
        return a;
    }
    if (width_of(a) > width) {
        return slice(a, 0, width);
    }
    return make(Op::ZExt, width, {a});
}

uint32_t
NetlistBuilder::sext(uint32_t a, uint32_t width)
{
    if (width_of(a) == width) {
        return a;
    }
    if (width_of(a) > width) {
        return slice(a, 0, width);
    }
    return make(Op::SExt, width, {a});
}

uint32_t
NetlistBuilder::resize(uint32_t a, uint32_t width, bool sign)
{
    return sign ? sext(a, width) : zext(a, width);
}

uint32_t
NetlistBuilder::slice(uint32_t a, uint32_t lsb, uint32_t width)
{
    if (lsb == 0 && width == width_of(a)) {
        return a;
    }
    return make(Op::Slice, width, {a}, lsb);
}

uint32_t
NetlistBuilder::mux(uint32_t sel, uint32_t a, uint32_t b)
{
    if (a == b) {
        return a;
    }
    return make(Op::Mux, width_of(a), {to_bool(sel), a, b});
}

uint32_t
NetlistBuilder::to_bool(uint32_t a)
{
    if (width_of(a) == 1) {
        return a;
    }
    return make(Op::ReduceOr, 1, {a});
}

uint32_t
NetlistBuilder::set_slice_const(uint32_t base, uint32_t lsb, uint32_t v)
{
    const uint32_t bw = width_of(base);
    const uint32_t vw = width_of(v);
    if (lsb >= bw) {
        return base;
    }
    const uint32_t w = std::min(vw, bw - lsb);
    std::vector<uint32_t> parts;
    if (lsb + w < bw) {
        parts.push_back(slice(base, lsb + w, bw - lsb - w));
    }
    parts.push_back(slice(v, 0, w));
    if (lsb > 0) {
        parts.push_back(slice(base, 0, lsb));
    }
    if (parts.size() == 1) {
        return parts[0];
    }
    return make(Op::Concat, bw, std::move(parts));
}

uint32_t
NetlistBuilder::set_slice_dyn(uint32_t base, uint32_t offset, uint32_t v)
{
    const uint32_t bw = width_of(base);
    const uint32_t vw = width_of(v);
    if (is_const(offset)) {
        return set_slice_const(
            base, static_cast<uint32_t>(const_val(offset).to_uint64()), v);
    }
    // (base & ~(mask << off)) | (zext(v) << off)
    const uint32_t mask =
        constant(BitVector::all_ones(vw).resized(bw));
    const uint32_t off = zext(offset, 32);
    const uint32_t shifted_mask = make(Op::Shl, bw, {mask, off});
    const uint32_t cleared =
        make(Op::And, bw, {base, make(Op::Not, bw, {shifted_mask})});
    const uint32_t shifted_v =
        make(Op::Shl, bw, {zext(v, bw), off});
    return make(Op::Or, bw, {cleared, shifted_v});
}

const std::string&
Netlist::source_of(uint32_t node) const
{
    static const std::string kEmpty;
    if (node >= node_src.size() || node_src[node] >= src_labels.size()) {
        return kEmpty;
    }
    return src_labels[node_src[node]];
}

std::string
Netlist::name_of(uint32_t node) const
{
    const auto it = node_names.find(node);
    if (it != node_names.end()) {
        return it->second;
    }
    const Node& n = nodes[node];
    if (n.op == Op::RegQ && n.aux < regs.size()) {
        return regs[n.aux].name;
    }
    if (n.op == Op::Input && n.aux < inputs.size()) {
        return inputs[n.aux].name;
    }
    if (n.op == Op::MemRead && n.aux < mems.size()) {
        return mems[n.aux].name + "[]";
    }
    if (n.op == Op::Const) {
        return "const";
    }
    const std::string& src = source_of(node);
    if (!src.empty()) {
        return src;
    }
    return "n" + std::to_string(node);
}

} // namespace cascade::fpga
