namespace cascade {
// placeholder translation unit; replaced as the runtime subsystem lands.
}
