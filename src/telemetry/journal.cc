#include "telemetry/journal.h"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace cascade::telemetry {

uint64_t
fnv1a64(std::string_view data)
{
    uint64_t h = 14695981039346656037ull;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

std::string
digest_hex(std::string_view data)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(data)));
    return buf;
}

// ---------------------------------------------------------------------------
// JsonWriter

void
JsonWriter::key(const char* k)
{
    if (!body_.empty()) {
        body_ += ',';
    }
    body_ += '"';
    body_ += k;
    body_ += "\":";
}

JsonWriter&
JsonWriter::str(const char* k, std::string_view value)
{
    key(k);
    body_ += '"';
    body_ += json_escape(std::string(value));
    body_ += '"';
    return *this;
}

JsonWriter&
JsonWriter::num(const char* k, uint64_t value)
{
    key(k);
    body_ += std::to_string(value);
    return *this;
}

JsonWriter&
JsonWriter::num_signed(const char* k, int64_t value)
{
    key(k);
    body_ += std::to_string(value);
    return *this;
}

JsonWriter&
JsonWriter::dbl(const char* k, double value)
{
    key(k);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    body_ += buf;
    return *this;
}

JsonWriter&
JsonWriter::boolean(const char* k, bool value)
{
    key(k);
    body_ += value ? "true" : "false";
    return *this;
}

JsonWriter&
JsonWriter::raw(const char* k, std::string_view json)
{
    key(k);
    body_ += json;
    return *this;
}

// ---------------------------------------------------------------------------
// JSON parser

namespace {

struct Parser {
    std::string_view text;
    size_t pos = 0;
    std::string error;

    bool fail(const std::string& msg)
    {
        if (error.empty()) {
            error = msg + " at offset " + std::to_string(pos);
        }
        return false;
    }

    void skip_ws()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    bool literal(const char* word)
    {
        const size_t n = std::strlen(word);
        if (text.compare(pos, n, word) != 0) {
            return fail(std::string("expected '") + word + "'");
        }
        pos += n;
        return true;
    }

    bool parse_string(std::string* out)
    {
        if (pos >= text.size() || text[pos] != '"') {
            return fail("expected string");
        }
        ++pos;
        out->clear();
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                if (pos + 1 >= text.size()) {
                    return fail("truncated escape");
                }
                const char e = text[pos + 1];
                pos += 2;
                switch (e) {
                    case '"': *out += '"'; break;
                    case '\\': *out += '\\'; break;
                    case '/': *out += '/'; break;
                    case 'b': *out += '\b'; break;
                    case 'f': *out += '\f'; break;
                    case 'n': *out += '\n'; break;
                    case 'r': *out += '\r'; break;
                    case 't': *out += '\t'; break;
                    case 'u': {
                        if (pos + 4 > text.size()) {
                            return fail("truncated \\u escape");
                        }
                        unsigned cp = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = text[pos + i];
                            cp <<= 4;
                            if (h >= '0' && h <= '9') {
                                cp |= h - '0';
                            } else if (h >= 'a' && h <= 'f') {
                                cp |= h - 'a' + 10;
                            } else if (h >= 'A' && h <= 'F') {
                                cp |= h - 'A' + 10;
                            } else {
                                return fail("bad \\u escape");
                            }
                        }
                        pos += 4;
                        // BMP-only UTF-8 encoding; the journal writer never
                        // emits surrogate pairs (it escapes bytes < 0x20).
                        if (cp < 0x80) {
                            *out += static_cast<char>(cp);
                        } else if (cp < 0x800) {
                            *out += static_cast<char>(0xc0 | (cp >> 6));
                            *out += static_cast<char>(0x80 | (cp & 0x3f));
                        } else {
                            *out += static_cast<char>(0xe0 | (cp >> 12));
                            *out +=
                                static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                            *out += static_cast<char>(0x80 | (cp & 0x3f));
                        }
                        break;
                    }
                    default:
                        return fail("unknown escape");
                }
                continue;
            }
            *out += c;
            ++pos;
        }
        return fail("unterminated string");
    }

    bool parse_value(JsonValue* out)
    {
        skip_ws();
        if (pos >= text.size()) {
            return fail("unexpected end of input");
        }
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out->kind = JsonValue::Kind::Object;
            skip_ws();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skip_ws();
                std::string k;
                if (!parse_string(&k)) {
                    return false;
                }
                skip_ws();
                if (pos >= text.size() || text[pos] != ':') {
                    return fail("expected ':'");
                }
                ++pos;
                JsonValue v;
                if (!parse_value(&v)) {
                    return false;
                }
                out->obj.emplace_back(std::move(k), std::move(v));
                skip_ws();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out->kind = JsonValue::Kind::Array;
            skip_ws();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                JsonValue v;
                if (!parse_value(&v)) {
                    return false;
                }
                out->arr.push_back(std::move(v));
                skip_ws();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out->kind = JsonValue::Kind::String;
            return parse_string(&out->str);
        }
        if (c == 't') {
            out->kind = JsonValue::Kind::Bool;
            out->b = true;
            return literal("true");
        }
        if (c == 'f') {
            out->kind = JsonValue::Kind::Bool;
            out->b = false;
            return literal("false");
        }
        if (c == 'n') {
            out->kind = JsonValue::Kind::Null;
            return literal("null");
        }
        // Number.
        const size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) {
            ++pos;
        }
        bool integral = true;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                text[pos] == '-' || text[pos] == '+')) {
            if (text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E') {
                integral = false;
            }
            ++pos;
        }
        if (pos == start) {
            return fail("expected value");
        }
        const std::string tok(text.substr(start, pos - start));
        out->kind = JsonValue::Kind::Number;
        out->num = std::strtod(tok.c_str(), nullptr);
        if (integral && tok[0] != '-') {
            out->is_int = true;
            out->u64 = std::strtoull(tok.c_str(), nullptr, 10);
        }
        return true;
    }
};

} // namespace

const JsonValue*
JsonValue::find(const std::string& k) const
{
    if (kind != Kind::Object) {
        return nullptr;
    }
    for (const auto& [key, value] : obj) {
        if (key == k) {
            return &value;
        }
    }
    return nullptr;
}

uint64_t
JsonValue::get_u64(const std::string& k, uint64_t dflt) const
{
    const JsonValue* v = find(k);
    if (v == nullptr || v->kind != Kind::Number) {
        return dflt;
    }
    return v->is_int ? v->u64 : static_cast<uint64_t>(v->num);
}

double
JsonValue::get_num(const std::string& k, double dflt) const
{
    const JsonValue* v = find(k);
    return (v != nullptr && v->kind == Kind::Number) ? v->num : dflt;
}

bool
JsonValue::get_bool(const std::string& k, bool dflt) const
{
    const JsonValue* v = find(k);
    return (v != nullptr && v->kind == Kind::Bool) ? v->b : dflt;
}

std::string
JsonValue::get_str(const std::string& k, const std::string& dflt) const
{
    const JsonValue* v = find(k);
    return (v != nullptr && v->kind == Kind::String) ? v->str : dflt;
}

bool
parse_json(std::string_view text, JsonValue* out, std::string* err)
{
    Parser p{text, 0, {}};
    if (!p.parse_value(out)) {
        if (err != nullptr) {
            *err = p.error;
        }
        return false;
    }
    p.skip_ws();
    if (p.pos != text.size()) {
        if (err != nullptr) {
            *err = "trailing characters at offset " + std::to_string(p.pos);
        }
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// Journal

Journal::Journal(size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity)
{
    ring_.reserve(ring_capacity_);
}

Journal::~Journal()
{
    stop_file();
}

void
Journal::set_clock(std::function<uint64_t()> clock)
{
    std::lock_guard<Mutex> lock(mutex_);
    clock_ = std::move(clock);
}

void
Journal::set_tenant(uint64_t tenant)
{
    std::lock_guard<Mutex> lock(mutex_);
    tenant_ = tenant;
}

uint64_t
Journal::record(const char* type, std::string data)
{
    Event event;
    std::function<void(const Event&)> observer;
    std::vector<std::function<void(const Event&)>> taps;
    {
        std::lock_guard<Mutex> lock(mutex_);
        event.seq = ++seq_;
        event.vt = clock_ ? clock_() : 0;
        event.tenant = tenant_;
        event.type = type;
        event.data = std::move(data);
        if (ring_.size() < ring_capacity_) {
            ring_.push_back(event);
        } else {
            ring_[next_] = event;
        }
        next_ = (next_ + 1) % ring_capacity_;
        count_ = ring_.size();
        if (file_ != nullptr) {
            const std::string line = event_json(event);
            std::fwrite(line.data(), 1, line.size(), file_);
            std::fputc('\n', file_);
        }
        observer = observer_;
        if (!taps_.empty()) {
            taps.reserve(taps_.size());
            for (const auto& [id, tap] : taps_) {
                taps.push_back(tap);
            }
        }
    }
    // The observer and taps run unlocked so they may inspect the journal
    // (but must not record into it).
    if (observer) {
        observer(event);
    }
    for (const auto& tap : taps) {
        tap(event);
    }
    return event.seq;
}

bool
Journal::start_file(const std::string& path, const std::string& header_json,
                    std::string* err)
{
    std::lock_guard<Mutex> lock(mutex_);
    if (file_ != nullptr) {
        if (err != nullptr) {
            *err = "already recording to " + path_;
        }
        return false;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        if (err != nullptr) {
            *err = path + ": " + std::strerror(errno);
        }
        return false;
    }
    std::fprintf(f, "{\"schema\":\"cascade.events.v1\",\"header\":%s}\n",
                 header_json.empty() ? "{}" : header_json.c_str());
    file_ = f;
    path_ = path;
    return true;
}

void
Journal::stop_file()
{
    std::lock_guard<Mutex> lock(mutex_);
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
        path_.clear();
    }
}

bool
Journal::writing() const
{
    std::lock_guard<Mutex> lock(mutex_);
    return file_ != nullptr;
}

bool
Journal::write_ring(const std::string& path, const std::string& header_json,
                    std::string* err) const
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        if (err != nullptr) {
            *err = path + ": " + std::strerror(errno);
        }
        return false;
    }
    std::fprintf(f, "{\"schema\":\"cascade.events.v1\",\"header\":%s}\n",
                 header_json.empty() ? "{}" : header_json.c_str());
    for (const Event& event : ring()) {
        const std::string line = event_json(event);
        std::fwrite(line.data(), 1, line.size(), f);
        std::fputc('\n', f);
    }
    std::fclose(f);
    return true;
}

void
Journal::set_observer(std::function<void(const Event&)> observer)
{
    std::lock_guard<Mutex> lock(mutex_);
    observer_ = std::move(observer);
}

int
Journal::add_tap(std::function<void(const Event&)> tap)
{
    std::lock_guard<Mutex> lock(mutex_);
    const int id = next_tap_id_++;
    taps_.emplace_back(id, std::move(tap));
    return id;
}

void
Journal::remove_tap(int id)
{
    std::lock_guard<Mutex> lock(mutex_);
    for (size_t i = 0; i < taps_.size(); ++i) {
        if (taps_[i].first == id) {
            taps_.erase(taps_.begin() + static_cast<long>(i));
            return;
        }
    }
}

std::vector<Journal::Event>
Journal::ring() const
{
    std::lock_guard<Mutex> lock(mutex_);
    std::vector<Event> out;
    out.reserve(ring_.size());
    if (ring_.size() < ring_capacity_) {
        out = ring_;
    } else {
        for (size_t i = 0; i < ring_.size(); ++i) {
            out.push_back(ring_[(next_ + i) % ring_capacity_]);
        }
    }
    return out;
}

std::string
Journal::ring_json() const
{
    std::string out = "[";
    bool first = true;
    for (const Event& event : ring()) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += event_json(event);
    }
    out += ']';
    return out;
}

uint64_t
Journal::events_recorded() const
{
    std::lock_guard<Mutex> lock(mutex_);
    return seq_;
}

std::string
Journal::event_json(const Event& event)
{
    // This exact shape ("data" last, payload verbatim) is relied upon by
    // replay's loader, which compares the raw payload text of recorded
    // vs. re-executed events.
    std::string out = "{\"seq\":";
    out += std::to_string(event.seq);
    out += ",\"vt\":";
    out += std::to_string(event.vt);
    out += ",\"type\":\"";
    out += json_escape(event.type);
    out += "\",";
    // Shared-mode attribution tag; omitted entirely at tenant 0 so
    // exclusive-session journals are byte-identical to pre-tag ones.
    // Placed before "data" — replay's loader extracts the payload as
    // everything from the final "data": key, and must not see it.
    if (event.tenant != 0) {
        out += "\"tenant\":";
        out += std::to_string(event.tenant);
        out += ',';
    }
    out += "\"data\":";
    out += event.data.empty() ? "{}" : event.data;
    out += '}';
    return out;
}

// ---------------------------------------------------------------------------
// BlackBox

namespace {

std::atomic<bool> g_dumped{false};

void
blackbox_dump(const char* reason)
{
    BlackBox::instance().dump(reason);
}

void
blackbox_signal_handler(int sig)
{
    const char* name = "fatal signal";
    switch (sig) {
        case SIGABRT: name = "SIGABRT"; break;
        case SIGSEGV: name = "SIGSEGV"; break;
        case SIGBUS: name = "SIGBUS"; break;
        case SIGFPE: name = "SIGFPE"; break;
        case SIGILL: name = "SIGILL"; break;
        default: break;
    }
    blackbox_dump(name);
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

std::terminate_handler g_prev_terminate = nullptr;

[[noreturn]] void
blackbox_terminate_handler()
{
    blackbox_dump("std::terminate");
    if (g_prev_terminate != nullptr) {
        g_prev_terminate();
    }
    std::abort();
}

void
blackbox_check_hook(const char* message)
{
    blackbox_dump(message);
}

#if defined(__SANITIZE_ADDRESS__)
constexpr bool kAsan = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
constexpr bool kAsan = true;
#else
constexpr bool kAsan = false;
#endif
#else
constexpr bool kAsan = false;
#endif

} // namespace

BlackBox&
BlackBox::instance()
{
    static BlackBox* box = new BlackBox(); // leaked: outlives static dtors
    return *box;
}

void
BlackBox::install_handlers()
{
    static std::once_flag once;
    std::call_once(once, [] {
        std::signal(SIGABRT, blackbox_signal_handler);
        if (!kAsan) {
            // ASan owns these for its own reports; stealing them would
            // trade a sanitizer diagnostic for a ring dump.
            std::signal(SIGSEGV, blackbox_signal_handler);
            std::signal(SIGBUS, blackbox_signal_handler);
            std::signal(SIGFPE, blackbox_signal_handler);
            std::signal(SIGILL, blackbox_signal_handler);
        }
        g_prev_terminate = std::set_terminate(blackbox_terminate_handler);
        common_detail::check_fail_hook.store(blackbox_check_hook);
    });
}

int
BlackBox::add_source(const std::string& name,
                     std::function<std::string()> provider)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const int id = next_id_++;
    sources_.push_back(Source{id, name, std::move(provider)});
    return id;
}

void
BlackBox::remove_source(int id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = sources_.begin(); it != sources_.end(); ++it) {
        if (it->id == id) {
            sources_.erase(it);
            return;
        }
    }
}

void
BlackBox::set_directory(const std::string& dir)
{
    std::lock_guard<std::mutex> lock(mutex_);
    directory_ = dir;
}

std::string
BlackBox::dump_json(const std::string& reason) const
{
    std::string out = "{\"schema\":\"cascade.crash.v1\",\"reason\":\"";
    out += json_escape(reason);
    out += "\",\"pid\":";
    out += std::to_string(static_cast<long>(::getpid()));
    out += ",\"sources\":[";
    // Best-effort locking: if the crash happened while the registry lock
    // was held we still want the dump, at the cost of a racy read.
    const bool locked = mutex_.try_lock();
    bool first = true;
    for (const Source& source : sources_) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += "{\"name\":\"";
        out += json_escape(source.name);
        out += "\",\"data\":";
        std::string data;
        try {
            data = source.provider();
        } catch (...) {
            data.clear();
        }
        if (data.empty()) {
            data = "null";
        }
        out += data;
        out += '}';
    }
    if (locked) {
        mutex_.unlock();
    }
    out += "]}";
    return out;
}

std::string
BlackBox::dump(const std::string& reason)
{
    if (g_dumped.exchange(true)) {
        return "";
    }
    std::string dir;
    {
        const bool locked = mutex_.try_lock();
        dir = directory_;
        if (locked) {
            mutex_.unlock();
        }
    }
    if (dir.empty()) {
        const char* env = std::getenv("CASCADE_CRASH_DIR");
        if (env != nullptr && env[0] != '\0') {
            dir = env;
        } else {
            dir = ".";
        }
    }
    const std::string path = dir + "/cascade-crash-" +
                             std::to_string(static_cast<long>(::getpid())) +
                             ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return "";
    }
    const std::string body = dump_json(reason);
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::fprintf(stderr, "cascade: black box written to %s\n", path.c_str());
    return path;
}

} // namespace cascade::telemetry
