namespace cascade {
// placeholder translation unit; replaced as the sim subsystem lands.
}
