#include "jit/codegen.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace cascade::jit {

namespace {

using fpga::Netlist;
using fpga::Node;
using fpga::Op;

uint32_t
words_of(uint32_t width)
{
    return (width + 63) / 64;
}

uint64_t
topmask(uint32_t width)
{
    const uint32_t r = width % 64;
    return r == 0 ? ~uint64_t{0} : ((uint64_t{1} << r) - 1);
}

uint64_t
fullmask(uint32_t width)
{
    // Mask of a width<=64 value within one word.
    return width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}

std::string
hex(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%" PRIx64 "ull", v);
    return buf;
}

/// Flat word-array layout of the kernel's state: every node value, every
/// register, and every memory lives at a fixed word offset, so the
/// generated code addresses state with compile-time constants and the ABI
/// marshals through small constant tables.
struct Layout {
    std::vector<uint32_t> voff;   ///< node id -> offset into State::v
    std::vector<uint32_t> roff;   ///< reg index -> offset into State::r
    std::vector<uint32_t> rwords; ///< reg index -> words
    std::vector<uint32_t> moff;   ///< mem index -> base offset into State::m
    std::vector<uint32_t> ew;     ///< mem index -> words per element
    std::vector<uint32_t> pdoff;  ///< write port -> offset into State::pmd
    uint32_t vtotal = 0;
    uint32_t rtotal = 0;
    uint32_t mtotal = 0;
    uint32_t pdtotal = 0;
    uint32_t maxw = 1; ///< scratch bound for the wide-op helpers
};

Layout
compute_layout(const Netlist& nl)
{
    Layout L;
    L.voff.reserve(nl.nodes.size());
    for (const Node& n : nl.nodes) {
        L.voff.push_back(L.vtotal);
        const uint32_t w = words_of(n.width);
        L.vtotal += w;
        L.maxw = std::max(L.maxw, w);
    }
    for (const fpga::RegDef& r : nl.regs) {
        L.roff.push_back(L.rtotal);
        const uint32_t w = words_of(r.width);
        L.rwords.push_back(w);
        L.rtotal += w;
        L.maxw = std::max(L.maxw, w);
    }
    for (const fpga::MemDef& m : nl.mems) {
        L.moff.push_back(L.mtotal);
        const uint32_t w = words_of(m.width);
        L.ew.push_back(w);
        L.mtotal += w * m.size;
        L.maxw = std::max(L.maxw, w);
    }
    for (const fpga::MemWritePort& p : nl.write_ports) {
        L.pdoff.push_back(L.pdtotal);
        const uint32_t w = words_of(nl.nodes[p.data].width);
        L.pdtotal += w;
        L.maxw = std::max(L.maxw, w);
    }
    return L;
}

/// Combinational level of each node: 0 for sources (Const/Input/RegQ),
/// 1 + max(arg levels) otherwise. Any level order is a valid topological
/// order of the DAG, so a level-ordered single pass settles exactly like
/// Bitstream's index-ordered pass.
std::vector<uint32_t>
compute_levels(const Netlist& nl)
{
    std::vector<uint32_t> level(nl.nodes.size(), 0);
    for (size_t i = 0; i < nl.nodes.size(); ++i) {
        const Node& n = nl.nodes[i];
        switch (n.op) {
          case Op::Const:
          case Op::Input:
          case Op::RegQ:
            level[i] = 0;
            break;
          default: {
            uint32_t m = 0;
            for (uint32_t a : n.args) {
                m = std::max(m, level[a]);
            }
            level[i] = m + 1;
            break;
          }
        }
    }
    return level;
}

/// The emitted helper library: exact mirrors of the BitVector operations
/// (common/bitvector.cc) for both the one-word scalar fast path and the
/// multi-word wide path. JIT_MAXW bounds every scratch array.
const char kPreamble[] = R"JIT(
#include <cstdint>

typedef uint64_t u64;
typedef uint32_t u32;

namespace {

inline u64 jit_topmask(u32 w) {
    const u32 r = w % 64u;
    return r == 0 ? ~0ull : ((1ull << r) - 1);
}
inline void wzero(u64* d, u32 nw) { for (u32 i = 0; i < nw; ++i) d[i] = 0; }
inline void wcopy(u64* d, const u64* s, u32 nw) {
    for (u32 i = 0; i < nw; ++i) d[i] = s[i];
}
inline int wbool(const u64* a, u32 nw) {
    for (u32 i = 0; i < nw; ++i) if (a[i]) return 1;
    return 0;
}
inline int wbit(const u64* a, u32 w, u64 i) {
    return i < w ? (int)((a[i / 64] >> (i % 64)) & 1) : 0;
}
inline void wsetbit(u64* a, u64 i, int b) {
    const u64 m = 1ull << (i % 64);
    if (b) a[i / 64] |= m; else a[i / 64] &= ~m;
}
inline void wnot(u64* d, const u64* a, u32 w) {
    const u32 nw = (w + 63) / 64;
    for (u32 i = 0; i < nw; ++i) d[i] = ~a[i];
    d[nw - 1] &= jit_topmask(w);
}
inline void wand_(u64* d, const u64* a, const u64* b, u32 nw) {
    for (u32 i = 0; i < nw; ++i) d[i] = a[i] & b[i];
}
inline void wor_(u64* d, const u64* a, const u64* b, u32 nw) {
    for (u32 i = 0; i < nw; ++i) d[i] = a[i] | b[i];
}
inline void wxor_(u64* d, const u64* a, const u64* b, u32 nw) {
    for (u32 i = 0; i < nw; ++i) d[i] = a[i] ^ b[i];
}
inline void wadd(u64* d, const u64* a, const u64* b, u32 w) {
    const u32 nw = (w + 63) / 64;
    u64 carry = 0;
    for (u32 i = 0; i < nw; ++i) {
        const u64 s1 = a[i] + b[i];
        const u64 c1 = s1 < a[i];
        const u64 s2 = s1 + carry;
        const u64 c2 = s2 < s1;
        d[i] = s2;
        carry = c1 | c2;
    }
    d[nw - 1] &= jit_topmask(w);
}
inline void wneg(u64* d, const u64* a, u32 w) {
    const u32 nw = (w + 63) / 64;
    u64 carry = 1;
    for (u32 i = 0; i < nw; ++i) {
        const u64 s = ~a[i] + carry;
        carry = carry != 0 && s == 0;
        d[i] = s;
    }
    d[nw - 1] &= jit_topmask(w);
}
inline void wsub(u64* d, const u64* a, const u64* b, u32 w) {
    u64 t[JIT_MAXW];
    wneg(t, b, w);
    wadd(d, a, t, w);
}
inline void wmul(u64* d, const u64* a, const u64* b, u32 w) {
    const u32 nw = (w + 63) / 64;
    u64 t[JIT_MAXW];
    wzero(t, nw);
    for (u32 i = 0; i < nw; ++i) {
        if (a[i] == 0) continue;
        u64 carry = 0;
        for (u32 j = 0; i + j < nw; ++j) {
            const unsigned __int128 p =
                (unsigned __int128)a[i] * b[j] + t[i + j] + carry;
            t[i + j] = (u64)p;
            carry = (u64)(p >> 64);
        }
    }
    for (u32 i = 0; i < nw; ++i) d[i] = t[i];
    d[nw - 1] &= jit_topmask(w);
}
inline int weq(const u64* a, const u64* b, u32 nw) {
    for (u32 i = 0; i < nw; ++i) if (a[i] != b[i]) return 0;
    return 1;
}
inline int wult(const u64* a, const u64* b, u32 nw) {
    for (u32 i = nw; i-- > 0;) if (a[i] != b[i]) return a[i] < b[i];
    return 0;
}
inline int wule(const u64* a, const u64* b, u32 nw) { return !wult(b, a, nw); }
inline int wslt(const u64* a, const u64* b, u32 w) {
    const int sa = wbit(a, w, w - 1);
    const int sb = wbit(b, w, w - 1);
    if (sa != sb) return sa;
    return wult(a, b, (w + 63) / 64);
}
inline void wshl(u64* d, const u64* a, u32 w, u64 amt) {
    u64 t[JIT_MAXW];
    const u32 nw = (w + 63) / 64;
    wzero(t, nw);
    if (amt < w) {
        for (u64 i = amt; i < w; ++i) wsetbit(t, i, wbit(a, w, i - amt));
    }
    wcopy(d, t, nw);
}
inline void wslice(u64* d, u32 dw, const u64* a, u32 aw, u64 lsb) {
    u64 t[JIT_MAXW];
    const u32 nw = (dw + 63) / 64;
    wzero(t, nw);
    for (u32 i = 0; i < dw; ++i) wsetbit(t, i, wbit(a, aw, lsb + i));
    wcopy(d, t, nw);
}
inline void wlshr(u64* d, const u64* a, u32 w, u64 amt) {
    if (amt >= w) { wzero(d, (w + 63) / 64); return; }
    wslice(d, w, a, w, amt);
}
inline void washr(u64* d, const u64* a, u32 w, u64 amt) {
    const int sign = wbit(a, w, w - 1);
    const u32 nw = (w + 63) / 64;
    if (amt >= w) {
        if (sign) {
            for (u32 i = 0; i < nw; ++i) d[i] = ~0ull;
            d[nw - 1] &= jit_topmask(w);
        } else {
            wzero(d, nw);
        }
        return;
    }
    wlshr(d, a, w, amt);
    if (sign) {
        for (u64 i = w - amt; i < w; ++i) wsetbit(d, i, 1);
    }
}
inline void wudivrem(u64* q, u64* r, const u64* a, const u64* b, u32 w) {
    const u32 nw = (w + 63) / 64;
    wzero(q, nw);
    wzero(r, nw);
    if (!wbool(b, nw)) return;
    if (nw == 1) { q[0] = a[0] / b[0]; r[0] = a[0] % b[0]; return; }
    u64 t[JIT_MAXW];
    for (int64_t i = (int64_t)w - 1; i >= 0; --i) {
        wshl(t, r, w, 1);
        wcopy(r, t, nw);
        wsetbit(r, 0, wbit(a, w, (u64)i));
        if (wule(b, r, nw)) {
            wsub(t, r, b, w);
            wcopy(r, t, nw);
            wsetbit(q, (u64)i, 1);
        }
    }
}
inline void wdivu(u64* d, const u64* a, const u64* b, u32 w) {
    u64 q[JIT_MAXW], r[JIT_MAXW];
    wudivrem(q, r, a, b, w);
    wcopy(d, q, (w + 63) / 64);
}
inline void wremu(u64* d, const u64* a, const u64* b, u32 w) {
    u64 q[JIT_MAXW], r[JIT_MAXW];
    wudivrem(q, r, a, b, w);
    wcopy(d, r, (w + 63) / 64);
}
inline void wdivs(u64* d, const u64* a, const u64* b, u32 w) {
    const u32 nw = (w + 63) / 64;
    const int na = wbit(a, w, w - 1);
    const int nb = wbit(b, w, w - 1);
    u64 pa[JIT_MAXW], pb[JIT_MAXW], q[JIT_MAXW];
    if (na) wneg(pa, a, w); else wcopy(pa, a, nw);
    if (nb) wneg(pb, b, w); else wcopy(pb, b, nw);
    wdivu(q, pa, pb, w);
    if (na != nb) wneg(d, q, w); else wcopy(d, q, nw);
}
inline void wrems(u64* d, const u64* a, const u64* b, u32 w) {
    const u32 nw = (w + 63) / 64;
    const int na = wbit(a, w, w - 1);
    u64 pa[JIT_MAXW], pb[JIT_MAXW], r[JIT_MAXW];
    if (na) wneg(pa, a, w); else wcopy(pa, a, nw);
    if (wbit(b, w, w - 1)) wneg(pb, b, w); else wcopy(pb, b, nw);
    wremu(r, pa, pb, w);
    if (na) wneg(d, r, w); else wcopy(d, r, nw);
}
inline void wpow(u64* d, const u64* a, const u64* b, u32 w, u32 bw) {
    const u32 nw = (w + 63) / 64;
    u64 res[JIT_MAXW], base[JIT_MAXW], t[JIT_MAXW];
    wzero(res, nw);
    res[0] = 1;
    res[nw - 1] &= jit_topmask(w);
    wcopy(base, a, nw);
    for (u32 i = 0; i < bw; ++i) {
        if (wbit(b, bw, i)) { wmul(t, res, base, w); wcopy(res, t, nw); }
        wmul(t, base, base, w);
        wcopy(base, t, nw);
    }
    wcopy(d, res, nw);
}
inline int wredand(const u64* a, u32 w) {
    const u32 nw = (w + 63) / 64;
    for (u32 i = 0; i + 1 < nw; ++i) {
        if (a[i] != ~0ull) return 0;
    }
    return a[nw - 1] == jit_topmask(w);
}
inline int wredxor(const u64* a, u32 nw) {
    u64 acc = 0;
    for (u32 i = 0; i < nw; ++i) acc ^= a[i];
    return (int)__builtin_parityll(acc);
}
inline void winsert(u64* d, u32 dw, u64 at, const u64* s, u32 sw) {
    for (u32 i = 0; i < sw && at + i < dw; ++i) {
        wsetbit(d, at + i, wbit(s, sw, i));
    }
}
inline void wzext(u64* d, u32 dw, const u64* a, u32 aw) {
    const u32 dnw = (dw + 63) / 64;
    const u32 anw = (aw + 63) / 64;
    for (u32 i = 0; i < dnw; ++i) d[i] = i < anw ? a[i] : 0;
    d[dnw - 1] &= jit_topmask(dw);
}
inline void wsext(u64* d, u32 dw, const u64* a, u32 aw) {
    const int sign = wbit(a, aw, aw - 1);
    wzext(d, dw, a, aw);
    if (sign && dw > aw) {
        for (u32 i = aw; i < dw; ++i) wsetbit(d, i, 1);
        d[(dw - 1) / 64] &= jit_topmask(dw);
    }
}
inline u64 sneg(u64 a, u64 m) { return (~a + 1) & m; }
inline int64_t ssext(u64 a, u32 w) {
    return (int64_t)(a << (64u - w)) >> (64u - w);
}
inline u64 sdivs(u64 a, u64 b, u32 w, u64 m) {
    const int na = (int)((a >> (w - 1)) & 1);
    const int nb = (int)((b >> (w - 1)) & 1);
    const u64 pa = na ? sneg(a, m) : a;
    const u64 pb = nb ? sneg(b, m) : b;
    const u64 q = pb ? pa / pb : 0;
    return na != nb ? sneg(q, m) : q;
}
inline u64 srems(u64 a, u64 b, u32 w, u64 m) {
    const int na = (int)((a >> (w - 1)) & 1);
    const u64 pa = na ? sneg(a, m) : a;
    const u64 pb = ((b >> (w - 1)) & 1) ? sneg(b, m) : b;
    const u64 r = pb ? pa % pb : 0;
    return na ? sneg(r, m) : r;
}
inline u64 spow(u64 a, u64 b, u64 m, u32 bw) {
    u64 res = 1 & m;
    u64 base = a;
    for (u32 i = 0; i < bw; ++i) {
        if ((b >> i) & 1) res = (res * base) & m;
        base = (base * base) & m;
    }
    return res;
}
inline u64 sshl(u64 a, u32 w, u64 m, u64 amt) {
    return amt >= w ? 0 : (a << amt) & m;
}
inline u64 slshr(u64 a, u32 w, u64 amt) { return amt >= w ? 0 : a >> amt; }
inline u64 sashr(u64 a, u32 w, u64 m, u64 amt) {
    const int sign = (int)((a >> (w - 1)) & 1);
    if (amt >= w) return sign ? m : 0;
    u64 r = a >> amt;
    if (sign) r |= m & ~(m >> amt);
    return r;
}
)JIT";

/// True when node \p i and all of its argument values fit in one word, so
/// the scalar fast path applies.
bool
is_scalar(const Netlist& nl, const Node& n)
{
    if (n.width > 64) {
        return false;
    }
    for (uint32_t a : n.args) {
        if (nl.nodes[a].width > 64) {
            return false;
        }
    }
    return true;
}

/// Emits the evaluation statement(s) for one node into \p os. `V` is the
/// node-value word array; offsets come from the layout.
void
emit_node(std::ostream& os, const Netlist& nl, const Layout& L, uint32_t i)
{
    const Node& n = nl.nodes[i];
    const uint32_t d = L.voff[i];
    const uint32_t W = n.width;
    const uint32_t NW = words_of(W);
    auto A = [&](size_t k) {
        return "V[" + std::to_string(L.voff[n.args[k]]) + "]";
    };
    auto AP = [&](size_t k) {
        return "&V[" + std::to_string(L.voff[n.args[k]]) + "]";
    };
    auto aw = [&](size_t k) { return nl.nodes[n.args[k]].width; };
    auto D = [&] { return "V[" + std::to_string(d) + "]"; };
    auto DP = [&] { return "&V[" + std::to_string(d) + "]"; };
    const std::string M = hex(fullmask(W));

    switch (n.op) {
      case Op::Const:
      case Op::Input:
        return; // set by init / set_input; never re-evaluated
      case Op::RegQ: {
        const uint32_t r = n.aux;
        if (NW == 1) {
            os << "    " << D() << " = S->r[" << L.roff[r] << "];\n";
        } else {
            os << "    wcopy(" << DP() << ", &S->r[" << L.roff[r] << "], "
               << NW << ");\n";
        }
        return;
      }
      case Op::MemRead: {
        const fpga::MemDef& mem = nl.mems[n.aux];
        const uint32_t ew = L.ew[n.aux];
        os << "    { const u64 a_ = " << A(0) << ";\n";
        if (ew == 1 && NW == 1) {
            os << "      " << D() << " = a_ < " << mem.size << "ull ? S->m["
               << L.moff[n.aux] << " + a_] : 0; }\n";
        } else {
            os << "      if (a_ < " << mem.size << "ull) wcopy(" << DP()
               << ", &S->m[" << L.moff[n.aux] << " + a_ * " << ew << "], "
               << ew << ");\n"
               << "      else wzero(" << DP() << ", " << NW << "); }\n";
        }
        return;
      }
      default:
        break;
    }

    if (is_scalar(nl, n)) {
        std::string e;
        switch (n.op) {
          case Op::Not:
            e = "(~" + A(0) + ") & " + M;
            break;
          case Op::And:
            e = A(0) + " & " + A(1);
            break;
          case Op::Or:
            e = A(0) + " | " + A(1);
            break;
          case Op::Xor:
            e = A(0) + " ^ " + A(1);
            break;
          case Op::Add:
            e = "(" + A(0) + " + " + A(1) + ") & " + M;
            break;
          case Op::Sub:
            e = "(" + A(0) + " - " + A(1) + ") & " + M;
            break;
          case Op::Mul:
            e = "(" + A(0) + " * " + A(1) + ") & " + M;
            break;
          case Op::Divu:
            e = A(1) + " ? " + A(0) + " / " + A(1) + " : 0";
            break;
          case Op::Remu:
            e = A(1) + " ? " + A(0) + " % " + A(1) + " : 0";
            break;
          case Op::Divs:
            e = "sdivs(" + A(0) + ", " + A(1) + ", " + std::to_string(W) +
                ", " + M + ")";
            break;
          case Op::Rems:
            e = "srems(" + A(0) + ", " + A(1) + ", " + std::to_string(W) +
                ", " + M + ")";
            break;
          case Op::Pow:
            e = "spow(" + A(0) + ", " + A(1) + ", " + M + ", " +
                std::to_string(aw(1)) + ")";
            break;
          case Op::Eq:
            e = "(u64)(" + A(0) + " == " + A(1) + ")";
            break;
          case Op::Ult:
            e = "(u64)(" + A(0) + " < " + A(1) + ")";
            break;
          case Op::Slt:
            e = "(u64)(ssext(" + A(0) + ", " + std::to_string(aw(0)) +
                ") < ssext(" + A(1) + ", " + std::to_string(aw(1)) + "))";
            break;
          case Op::Shl:
            e = "sshl(" + A(0) + ", " + std::to_string(W) + ", " + M + ", " +
                A(1) + ")";
            break;
          case Op::Lshr:
            e = "slshr(" + A(0) + ", " + std::to_string(W) + ", " + A(1) +
                ")";
            break;
          case Op::Ashr:
            e = "sashr(" + A(0) + ", " + std::to_string(W) + ", " + M +
                ", " + A(1) + ")";
            break;
          case Op::Mux:
            e = A(0) + " ? " + A(1) + " : " + A(2);
            break;
          case Op::Concat: {
            e = A(0);
            for (size_t k = 1; k < n.args.size(); ++k) {
                e = "((" + e + " << " + std::to_string(aw(k)) + ") | " +
                    A(k) + ")";
            }
            break;
          }
          case Op::Slice:
            if (n.aux >= aw(0)) {
                e = "0";
            } else {
                e = "(" + A(0) + " >> " + std::to_string(n.aux) + ") & " + M;
            }
            break;
          case Op::DynSlice:
            e = "(" + A(1) + " < 64 ? " + A(0) + " >> " + A(1) + " : 0) & " +
                M;
            break;
          case Op::ReduceAnd:
            e = "(u64)(" + A(0) + " == " + hex(fullmask(aw(0))) + ")";
            break;
          case Op::ReduceOr:
            e = "(u64)(" + A(0) + " != 0)";
            break;
          case Op::ReduceXor:
            e = "(u64)__builtin_parityll(" + A(0) + ")";
            break;
          case Op::ZExt:
            e = A(0) + " & " + M;
            break;
          case Op::SExt:
            if (W > aw(0)) {
                const uint64_t ext = fullmask(W) & ~fullmask(aw(0));
                e = A(0) + " | (((" + A(0) + " >> " +
                    std::to_string(aw(0) - 1) + ") & 1) ? " + hex(ext) +
                    " : 0)";
            } else {
                e = A(0) + " & " + M;
            }
            break;
          default:
            CASCADE_CHECK(false);
        }
        os << "    " << D() << " = " << e << ";\n";
        return;
    }

    // Wide path: word-array helpers mirroring BitVector ops.
    const std::string Ws = std::to_string(W);
    switch (n.op) {
      case Op::Not:
        os << "    wnot(" << DP() << ", " << AP(0) << ", " << Ws << ");\n";
        break;
      case Op::And:
        os << "    wand_(" << DP() << ", " << AP(0) << ", " << AP(1) << ", "
           << NW << ");\n";
        break;
      case Op::Or:
        os << "    wor_(" << DP() << ", " << AP(0) << ", " << AP(1) << ", "
           << NW << ");\n";
        break;
      case Op::Xor:
        os << "    wxor_(" << DP() << ", " << AP(0) << ", " << AP(1) << ", "
           << NW << ");\n";
        break;
      case Op::Add:
        os << "    wadd(" << DP() << ", " << AP(0) << ", " << AP(1) << ", "
           << Ws << ");\n";
        break;
      case Op::Sub:
        os << "    wsub(" << DP() << ", " << AP(0) << ", " << AP(1) << ", "
           << Ws << ");\n";
        break;
      case Op::Mul:
        os << "    wmul(" << DP() << ", " << AP(0) << ", " << AP(1) << ", "
           << Ws << ");\n";
        break;
      case Op::Divu:
        os << "    wdivu(" << DP() << ", " << AP(0) << ", " << AP(1) << ", "
           << Ws << ");\n";
        break;
      case Op::Remu:
        os << "    wremu(" << DP() << ", " << AP(0) << ", " << AP(1) << ", "
           << Ws << ");\n";
        break;
      case Op::Divs:
        os << "    wdivs(" << DP() << ", " << AP(0) << ", " << AP(1) << ", "
           << Ws << ");\n";
        break;
      case Op::Rems:
        os << "    wrems(" << DP() << ", " << AP(0) << ", " << AP(1) << ", "
           << Ws << ");\n";
        break;
      case Op::Pow:
        os << "    wpow(" << DP() << ", " << AP(0) << ", " << AP(1) << ", "
           << Ws << ", " << aw(1) << ");\n";
        break;
      case Op::Eq:
        os << "    " << D() << " = (u64)weq(" << AP(0) << ", " << AP(1)
           << ", " << words_of(aw(0)) << ");\n";
        break;
      case Op::Ult:
        os << "    " << D() << " = (u64)wult(" << AP(0) << ", " << AP(1)
           << ", " << words_of(aw(0)) << ");\n";
        break;
      case Op::Slt:
        os << "    " << D() << " = (u64)wslt(" << AP(0) << ", " << AP(1)
           << ", " << aw(0) << ");\n";
        break;
      case Op::Shl:
        os << "    wshl(" << DP() << ", " << AP(0) << ", " << Ws << ", "
           << A(1) << ");\n";
        break;
      case Op::Lshr:
        os << "    wlshr(" << DP() << ", " << AP(0) << ", " << Ws << ", "
           << A(1) << ");\n";
        break;
      case Op::Ashr:
        os << "    washr(" << DP() << ", " << AP(0) << ", " << Ws << ", "
           << A(1) << ");\n";
        break;
      case Op::Mux:
        os << "    if (wbool(" << AP(0) << ", " << words_of(aw(0))
           << ")) wcopy(" << DP() << ", " << AP(1) << ", " << NW
           << "); else wcopy(" << DP() << ", " << AP(2) << ", " << NW
           << ");\n";
        break;
      case Op::Concat: {
        os << "    wzero(" << DP() << ", " << NW << ");\n";
        uint64_t pos = 0;
        for (size_t k = n.args.size(); k-- > 0;) {
            os << "    winsert(" << DP() << ", " << Ws << ", " << pos << ", "
               << AP(k) << ", " << aw(k) << ");\n";
            pos += aw(k);
        }
        break;
      }
      case Op::Slice:
        os << "    wslice(" << DP() << ", " << Ws << ", " << AP(0) << ", "
           << aw(0) << ", " << n.aux << "ull);\n";
        break;
      case Op::DynSlice:
        os << "    wslice(" << DP() << ", " << Ws << ", " << AP(0) << ", "
           << aw(0) << ", " << A(1) << ");\n";
        break;
      case Op::ReduceAnd:
        os << "    " << D() << " = (u64)wredand(" << AP(0) << ", " << aw(0)
           << ");\n";
        break;
      case Op::ReduceOr:
        os << "    " << D() << " = (u64)wbool(" << AP(0) << ", "
           << words_of(aw(0)) << ");\n";
        break;
      case Op::ReduceXor:
        os << "    " << D() << " = (u64)wredxor(" << AP(0) << ", "
           << words_of(aw(0)) << ");\n";
        break;
      case Op::ZExt:
        os << "    wzext(" << DP() << ", " << Ws << ", " << AP(0) << ", "
           << aw(0) << ");\n";
        break;
      case Op::SExt:
        os << "    wsext(" << DP() << ", " << Ws << ", " << AP(0) << ", "
           << aw(0) << ");\n";
        break;
      default:
        CASCADE_CHECK(false);
    }
}

/// Emits `name[] = {v0, v1, ...};` (with a dummy 0 for empty lists, since
/// zero-length arrays are ill-formed).
template <typename T>
void
emit_table(std::ostream& os, const char* type, const char* name,
           const std::vector<T>& vals)
{
    os << "static const " << type << " " << name << "[] = {";
    if (vals.empty()) {
        os << "0";
    } else {
        for (size_t i = 0; i < vals.size(); ++i) {
            os << (i ? ", " : "") << vals[i];
            if (std::string(type) == "u64") {
                os << "ull";
            }
        }
    }
    os << "};\n";
}

} // namespace

std::string
generate_source(const Netlist& nl)
{
    const Layout L = compute_layout(nl);
    const std::vector<uint32_t> level = compute_levels(nl);
    const uint32_t max_level =
        level.empty() ? 0 : *std::max_element(level.begin(), level.end());

    std::ostringstream os;
    os << "// Generated by cascade jit::generate_source. One translation\n"
          "// unit per netlist: levelized straight-line evaluation with\n"
          "// Bitstream-identical semantics behind the cascade_jit_* ABI.\n"
          "// nodes=" << nl.nodes.size() << " regs=" << nl.regs.size()
       << " mems=" << nl.mems.size() << " levels=" << (max_level + 1)
       << "\n";
    os << "#define JIT_MAXW " << L.maxw << "\n";
    os << kPreamble;

    // --- State -----------------------------------------------------------
    const uint32_t rcount = std::max<size_t>(1, nl.regs.size());
    const uint32_t pcount = std::max<size_t>(1, nl.write_ports.size());
    os << "\nstruct State {\n"
       << "    u64 v[" << std::max<uint32_t>(1, L.vtotal) << "];\n"
       << "    u64 r[" << std::max<uint32_t>(1, L.rtotal) << "];\n"
       << "    u64 m[" << std::max<uint32_t>(1, L.mtotal) << "];\n"
       << "    u64 latch[" << rcount << "];\n"
       << "    u64 pr[" << std::max<uint32_t>(1, L.rtotal) << "];\n"
       << "    u64 pma[" << pcount << "];\n"
       << "    u64 pmd[" << std::max<uint32_t>(1, L.pdtotal) << "];\n"
       << "    u64 cycles;\n"
       << "    unsigned char prf[" << rcount << "];\n"
       << "    unsigned char pmf[" << pcount << "];\n"
       << "    unsigned char prc[" << rcount << "];\n"
       << "    unsigned char ppc[" << pcount << "];\n"
       << "};\n\n";

    // --- Sequential-logic tables ----------------------------------------
    std::vector<uint32_t> creg_idx, creg_clk, creg_next, creg_cw;
    for (size_t r = 0; r < nl.regs.size(); ++r) {
        if (nl.regs[r].clock == fpga::kNoClock) {
            continue;
        }
        creg_idx.push_back(static_cast<uint32_t>(r));
        creg_clk.push_back(L.voff[nl.regs[r].clock]);
        creg_next.push_back(L.voff[nl.regs[r].next]);
        creg_cw.push_back(std::min(
            words_of(nl.nodes[nl.regs[r].next].width), L.rwords[r]));
    }
    emit_table(os, "u32", "g_creg_idx", creg_idx);
    emit_table(os, "u32", "g_creg_clk", creg_clk);
    emit_table(os, "u32", "g_creg_next", creg_next);
    emit_table(os, "u32", "g_creg_cw", creg_cw);
    emit_table(os, "u32", "g_reg_off", L.roff);
    emit_table(os, "u32", "g_reg_w", L.rwords);
    {
        std::vector<uint64_t> rmask;
        for (const fpga::RegDef& r : nl.regs) {
            rmask.push_back(topmask(r.width));
        }
        emit_table(os, "u64", "g_reg_mask", rmask);
    }
    {
        std::vector<uint32_t> wp_clk, wp_en, wp_enw, wp_addr, wp_data,
            wp_dw, wp_moff, wp_ew, wp_copyw;
        std::vector<uint64_t> wp_msize, wp_mmask;
        for (size_t p = 0; p < nl.write_ports.size(); ++p) {
            const fpga::MemWritePort& port = nl.write_ports[p];
            wp_clk.push_back(L.voff[port.clock]);
            wp_en.push_back(L.voff[port.enable]);
            wp_enw.push_back(words_of(nl.nodes[port.enable].width));
            wp_addr.push_back(L.voff[port.addr]);
            wp_data.push_back(L.voff[port.data]);
            wp_dw.push_back(words_of(nl.nodes[port.data].width));
            wp_moff.push_back(L.moff[port.mem]);
            wp_ew.push_back(L.ew[port.mem]);
            wp_copyw.push_back(std::min(
                words_of(nl.nodes[port.data].width), L.ew[port.mem]));
            wp_msize.push_back(nl.mems[port.mem].size);
            wp_mmask.push_back(topmask(nl.mems[port.mem].width));
        }
        emit_table(os, "u32", "g_wp_clk", wp_clk);
        emit_table(os, "u32", "g_wp_en", wp_en);
        emit_table(os, "u32", "g_wp_enw", wp_enw);
        emit_table(os, "u32", "g_wp_addr", wp_addr);
        emit_table(os, "u32", "g_wp_data", wp_data);
        emit_table(os, "u32", "g_wp_dw", wp_dw);
        emit_table(os, "u32", "g_wp_doff", L.pdoff);
        emit_table(os, "u32", "g_wp_moff", wp_moff);
        emit_table(os, "u32", "g_wp_ew", wp_ew);
        emit_table(os, "u32", "g_wp_copyw", wp_copyw);
        emit_table(os, "u64", "g_wp_msize", wp_msize);
        emit_table(os, "u64", "g_wp_mmask", wp_mmask);
    }

    // --- ABI marshalling tables -----------------------------------------
    {
        std::vector<uint32_t> in_off, in_w;
        std::vector<uint64_t> in_mask;
        for (const fpga::PortDef& p : nl.inputs) {
            in_off.push_back(L.voff[p.node]);
            in_w.push_back(words_of(p.width));
            in_mask.push_back(topmask(p.width));
        }
        emit_table(os, "u32", "g_in_off", in_off);
        emit_table(os, "u32", "g_in_w", in_w);
        emit_table(os, "u64", "g_in_mask", in_mask);
        std::vector<uint32_t> out_off, out_w;
        for (const fpga::PortDef& p : nl.outputs) {
            out_off.push_back(L.voff[p.node]);
            out_w.push_back(words_of(nl.nodes[p.node].width));
        }
        emit_table(os, "u32", "g_out_off", out_off);
        emit_table(os, "u32", "g_out_w", out_w);
        std::vector<uint32_t> mem_off, mem_ew;
        std::vector<uint64_t> mem_size, mem_mask;
        for (size_t m = 0; m < nl.mems.size(); ++m) {
            mem_off.push_back(L.moff[m]);
            mem_ew.push_back(L.ew[m]);
            mem_size.push_back(nl.mems[m].size);
            mem_mask.push_back(topmask(nl.mems[m].width));
        }
        emit_table(os, "u32", "g_mem_off", mem_off);
        emit_table(os, "u32", "g_mem_ew", mem_ew);
        emit_table(os, "u64", "g_mem_size", mem_size);
        emit_table(os, "u64", "g_mem_mask", mem_mask);
    }

    // --- Combinational evaluation: one function per level ----------------
    // Any level order is a topological order, so a single level-ordered
    // pass settles combinational logic exactly like Bitstream::eval_comb's
    // index-ordered pass. Oversized levels are chunked to keep individual
    // functions compilable.
    constexpr size_t kChunk = 1024;
    std::vector<std::vector<uint32_t>> by_level(max_level + 1);
    for (uint32_t i = 0; i < nl.nodes.size(); ++i) {
        by_level[level[i]].push_back(i);
    }
    std::vector<std::string> fns;
    for (uint32_t lv = 0; lv <= max_level; ++lv) {
        const std::vector<uint32_t>& ids = by_level[lv];
        for (size_t base = 0; base < ids.size() || (base == 0 && lv == 0);
             base += kChunk) {
            std::ostringstream body;
            size_t emitted = 0;
            for (size_t k = base; k < ids.size() && k < base + kChunk;
                 ++k) {
                const size_t before =
                    static_cast<size_t>(body.tellp());
                emit_node(body, nl, L, ids[k]);
                if (static_cast<size_t>(body.tellp()) != before) {
                    ++emitted;
                }
            }
            if (emitted == 0 && !(base == 0 && lv == 0)) {
                continue;
            }
            std::string name = "eval_l" + std::to_string(lv) +
                               (base == 0 ? ""
                                          : "_" + std::to_string(base));
            fns.push_back(name);
            os << "static void " << name << "(State* S) {\n"
               << "    u64* const V = S->v;\n"
               << "    (void)V;\n"
               << body.str() << "}\n";
            if (ids.empty()) {
                break;
            }
        }
    }
    os << "static void eval(State* S) {\n";
    for (const std::string& f : fns) {
        os << "    " << f << "(S);\n";
    }
    os << "}\n\n";

    // --- step(): Bitstream::step's double-buffered latch cascade ---------
    os << "static void step(State* S) {\n"
       << "    S->cycles += 1;\n"
       << "    eval(S);\n"
       << "    for (int iter = 0; iter < 8; ++iter) {\n"
       << "        int any = 0;\n"
       << "        for (u32 k = 0; k < " << creg_idx.size() << "u; ++k) {\n"
       << "            const int now = (int)(S->v[g_creg_clk[k]] & 1);\n"
       << "            const u32 r = g_creg_idx[k];\n"
       << "            if (now && !S->prc[r]) {\n"
       << "                wzero(&S->pr[g_reg_off[r]], g_reg_w[r]);\n"
       << "                wcopy(&S->pr[g_reg_off[r]], "
          "&S->v[g_creg_next[k]], g_creg_cw[k]);\n"
       << "                S->prf[r] = 1;\n"
       << "                S->latch[r] += 1;\n"
       << "                any = 1;\n"
       << "            }\n"
       << "            S->prc[r] = (unsigned char)now;\n"
       << "        }\n"
       << "        for (u32 p = 0; p < " << nl.write_ports.size()
       << "u; ++p) {\n"
       << "            const int now = (int)(S->v[g_wp_clk[p]] & 1);\n"
       << "            if (now && !S->ppc[p] && wbool(&S->v[g_wp_en[p]], "
          "g_wp_enw[p])) {\n"
       << "                S->pma[p] = S->v[g_wp_addr[p]];\n"
       << "                wcopy(&S->pmd[g_wp_doff[p]], "
          "&S->v[g_wp_data[p]], g_wp_dw[p]);\n"
       << "                S->pmf[p] = 1;\n"
       << "                any = 1;\n"
       << "            }\n"
       << "            S->ppc[p] = (unsigned char)now;\n"
       << "        }\n"
       << "        if (!any) break;\n"
       << "        for (u32 r = 0; r < " << nl.regs.size() << "u; ++r) {\n"
       << "            if (S->prf[r]) {\n"
       << "                wcopy(&S->r[g_reg_off[r]], &S->pr[g_reg_off[r]], "
          "g_reg_w[r]);\n"
       << "                S->prf[r] = 0;\n"
       << "            }\n"
       << "        }\n"
       << "        for (u32 p = 0; p < " << nl.write_ports.size()
       << "u; ++p) {\n"
       << "            if (!S->pmf[p]) continue;\n"
       << "            S->pmf[p] = 0;\n"
       << "            if (S->pma[p] >= g_wp_msize[p]) continue;\n"
       << "            u64* e = &S->m[g_wp_moff[p] + S->pma[p] * "
          "g_wp_ew[p]];\n"
       << "            wzero(e, g_wp_ew[p]);\n"
       << "            wcopy(e, &S->pmd[g_wp_doff[p]], g_wp_copyw[p]);\n"
       << "            e[g_wp_ew[p] - 1] &= g_wp_mmask[p];\n"
       << "        }\n"
       << "        eval(S);\n"
       << "    }\n"
       << "}\n\n";

    // --- init(): Bitstream's constructor ---------------------------------
    os << "static void init(State* S) {\n";
    for (size_t i = 0; i < nl.nodes.size(); ++i) {
        const Node& n = nl.nodes[i];
        if (n.op != Op::Const) {
            continue;
        }
        for (uint32_t w = 0; w < n.cval.num_words(); ++w) {
            if (n.cval.word(w) != 0) {
                os << "    S->v[" << (L.voff[i] + w) << "] = "
                   << hex(n.cval.word(w)) << ";\n";
            }
        }
    }
    for (size_t r = 0; r < nl.regs.size(); ++r) {
        const BitVector init = nl.regs[r].init.resized(nl.regs[r].width);
        for (uint32_t w = 0; w < L.rwords[r] && w < init.num_words(); ++w) {
            if (init.word(w) != 0) {
                os << "    S->r[" << (L.roff[r] + w) << "] = "
                   << hex(init.word(w)) << ";\n";
            }
        }
    }
    for (size_t m = 0; m < nl.mems.size(); ++m) {
        const fpga::MemDef& mem = nl.mems[m];
        for (const auto& [addr, value] : mem.init) {
            if (addr >= mem.size) {
                continue;
            }
            const BitVector v = value.resized(mem.width);
            for (uint32_t w = 0; w < v.num_words(); ++w) {
                if (v.word(w) != 0) {
                    os << "    S->m["
                       << (L.moff[m] + addr * L.ew[m] + w) << "] = "
                       << hex(v.word(w)) << ";\n";
                }
            }
        }
    }
    os << "    eval(S);\n"
       << "    for (u32 k = 0; k < " << creg_idx.size() << "u; ++k) {\n"
       << "        S->prc[g_creg_idx[k]] = "
          "(unsigned char)(S->v[g_creg_clk[k]] & 1);\n"
       << "    }\n"
       << "    for (u32 p = 0; p < " << nl.write_ports.size()
       << "u; ++p) {\n"
       << "        S->ppc[p] = (unsigned char)(S->v[g_wp_clk[p]] & 1);\n"
       << "    }\n"
       << "}\n\n"
       << "} // namespace\n\n";

    // --- extern "C" ABI --------------------------------------------------
    os << "extern \"C\" {\n"
       << "unsigned cascade_jit_abi_version() { return 1; }\n"
       << "void* cascade_jit_new() { State* S = new State(); init(S); "
          "return S; }\n"
       << "void cascade_jit_free(void* p) { delete (State*)p; }\n"
       << "void cascade_jit_eval(void* p) { eval((State*)p); }\n"
       << "void cascade_jit_step(void* p) { step((State*)p); }\n"
       << "u64 cascade_jit_cycles(void* p) { return ((State*)p)->cycles; "
          "}\n"
       << "void cascade_jit_set_input(void* p, u32 i, const u64* w) {\n"
       << "    State* S = (State*)p;\n"
       << "    const u32 off = g_in_off[i];\n"
       << "    const u32 nw = g_in_w[i];\n"
       << "    for (u32 k = 0; k < nw; ++k) S->v[off + k] = w[k];\n"
       << "    S->v[off + nw - 1] &= g_in_mask[i];\n"
       << "}\n"
       << "void cascade_jit_get_output(void* p, u32 i, u64* w) {\n"
       << "    State* S = (State*)p;\n"
       << "    for (u32 k = 0; k < g_out_w[i]; ++k) "
          "w[k] = S->v[g_out_off[i] + k];\n"
       << "}\n"
       << "void cascade_jit_get_reg(void* p, u32 r, u64* w) {\n"
       << "    State* S = (State*)p;\n"
       << "    for (u32 k = 0; k < g_reg_w[r]; ++k) "
          "w[k] = S->r[g_reg_off[r] + k];\n"
       << "}\n"
       << "void cascade_jit_set_reg(void* p, u32 r, const u64* w) {\n"
       << "    State* S = (State*)p;\n"
       << "    for (u32 k = 0; k < g_reg_w[r]; ++k) "
          "S->r[g_reg_off[r] + k] = w[k];\n"
       << "    S->r[g_reg_off[r] + g_reg_w[r] - 1] &= g_reg_mask[r];\n"
       << "}\n"
       << "void cascade_jit_get_mem(void* p, u32 m, u64 idx, u64* w) {\n"
       << "    State* S = (State*)p;\n"
       << "    const u32 off = g_mem_off[m] + (u32)(idx * g_mem_ew[m]);\n"
       << "    for (u32 k = 0; k < g_mem_ew[m]; ++k) w[k] = S->m[off + "
          "k];\n"
       << "}\n"
       << "void cascade_jit_set_mem(void* p, u32 m, u64 idx, const u64* w) "
          "{\n"
       << "    State* S = (State*)p;\n"
       << "    if (idx >= g_mem_size[m]) return;\n"
       << "    const u32 off = g_mem_off[m] + (u32)(idx * g_mem_ew[m]);\n"
       << "    for (u32 k = 0; k < g_mem_ew[m]; ++k) S->m[off + k] = "
          "w[k];\n"
       << "    S->m[off + g_mem_ew[m] - 1] &= g_mem_mask[m];\n"
       << "}\n"
       << "u64 cascade_jit_latch_count(void* p, u32 r) { return "
          "((State*)p)->latch[r]; }\n"
       << "} // extern \"C\"\n";

    return os.str();
}

} // namespace cascade::jit
