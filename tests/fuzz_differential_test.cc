/// \file
/// Randomized differential testing: generate random (but well-formed)
/// Verilog modules, run the reference interpreter and the synthesized
/// levelized netlist side by side under random stimulus, and require
/// bit-identical outputs. This is the deepest correctness check in the
/// repository: it pins the interpreter, the synthesizer, the constant
/// folder, the canonicalizer, and the bitstream evaluator to one another.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "fpga/bitstream.h"
#include "fpga/synth.h"
#include "sim/interpreter.h"
#include "telemetry/journal.h"
#include "verilog/parser.h"

namespace cascade {
namespace {

using namespace verilog;

class ExprGen {
  public:
    ExprGen(std::mt19937_64* rng, std::vector<std::string> leaves)
        : rng_(rng), leaves_(std::move(leaves))
    {}

    std::string
    gen(int depth)
    {
        if (depth <= 0 || pick(4) == 0) {
            return leaf();
        }
        switch (pick(12)) {
          case 0:
            return "(" + gen(depth - 1) + " + " + gen(depth - 1) + ")";
          case 1:
            return "(" + gen(depth - 1) + " - " + gen(depth - 1) + ")";
          case 2:
            return "(" + gen(depth - 1) + " * " + gen(depth - 1) + ")";
          case 3:
            return "(" + gen(depth - 1) + " ^ " + gen(depth - 1) + ")";
          case 4:
            return "(" + gen(depth - 1) + " & " + gen(depth - 1) + ")";
          case 5:
            return "(" + gen(depth - 1) + " | " + gen(depth - 1) + ")";
          case 6:
            return "(~" + gen(depth - 1) + ")";
          case 7:
            return "(" + gen(depth - 1) + " >> " +
                   std::to_string(pick(9)) + ")";
          case 8:
            return "(" + gen(depth - 1) + " << " +
                   std::to_string(pick(9)) + ")";
          case 9:
            return "((" + gen(depth - 1) + " < " + gen(depth - 1) +
                   ") ? " + gen(depth - 1) + " : " + gen(depth - 1) + ")";
          case 10:
            // Selects only apply to names in Verilog.
            return "{" + var_leaf() + "[3:0], " + var_leaf() + "[7:4]}";
          default:
            return "(" + gen(depth - 1) + " == " + gen(depth - 1) + ")";
        }
    }

  private:
    uint32_t pick(uint32_t n) { return static_cast<uint32_t>((*rng_)() % n); }

    std::string
    var_leaf()
    {
        return leaves_[pick(static_cast<uint32_t>(leaves_.size()))];
    }

    std::string
    leaf()
    {
        if (pick(3) == 0) {
            return std::to_string(pick(2) ? 8 : 16) + "'d" +
                   std::to_string(pick(1000));
        }
        return leaves_[pick(static_cast<uint32_t>(leaves_.size()))];
    }

    std::mt19937_64* rng_;
    std::vector<std::string> leaves_;
};

/// Generates one random module: 3 inputs, a few comb wires, a couple of
/// registers with random next-state logic, and outputs tapping everything.
std::string
gen_module(uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::ostringstream src;
    src << "module F(input wire clk, input wire [7:0] a, "
           "input wire [7:0] b, input wire [7:0] c,\n"
           "         output wire [7:0] o0, output wire [7:0] o1, "
           "output wire [7:0] o2);\n";
    ExprGen comb_gen(&rng, {"a", "b", "c"});
    src << "  wire [7:0] w0;\n  wire [7:0] w1;\n";
    src << "  assign w0 = " << comb_gen.gen(3) << ";\n";
    ExprGen comb_gen2(&rng, {"a", "b", "c", "w0"});
    src << "  assign w1 = " << comb_gen2.gen(3) << ";\n";
    src << "  reg [7:0] r0 = " << (rng() % 256) << ";\n";
    src << "  reg [7:0] r1 = " << (rng() % 256) << ";\n";
    ExprGen seq_gen(&rng, {"a", "b", "c", "w0", "w1", "r0", "r1"});
    src << "  always @(posedge clk) begin\n";
    src << "    r0 <= " << seq_gen.gen(3) << ";\n";
    if (rng() % 2 == 0) {
        src << "    if (" << seq_gen.gen(2) << ")\n";
        src << "      r1 <= " << seq_gen.gen(2) << ";\n";
    } else {
        src << "    case (" << seq_gen.gen(1) << ")\n";
        src << "      8'd0: r1 <= " << seq_gen.gen(2) << ";\n";
        src << "      8'd1, 8'd2: r1 <= " << seq_gen.gen(2) << ";\n";
        src << "      default: r1 <= " << seq_gen.gen(2) << ";\n";
        src << "    endcase\n";
    }
    src << "  end\n";
    src << "  assign o0 = w0 ^ w1;\n";
    src << "  assign o1 = r0;\n";
    src << "  assign o2 = r1 + w0;\n";
    src << "endmodule\n";
    return src.str();
}

/// Cap on retained repro bundles: an unattended fuzz loop (or a broken
/// build failing every seed) would otherwise grow repro/ without bound.
constexpr size_t kMaxRepros = 20;

/// Keeps only the newest kMaxRepros .v/.jsonl bundles under repro/ (by
/// file mtime, the fuzzer's discovery order). Every dropped bundle is
/// recorded in \p journal as a `repro.pruned` event, so the ring that
/// ships with the surviving repro says what was discarded and when.
void
prune_repros(telemetry::Journal* journal)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    std::vector<std::pair<fs::file_time_type, fs::path>> bundles;
    for (const auto& entry : fs::directory_iterator("repro", ec)) {
        if (entry.path().extension() == ".v") {
            bundles.emplace_back(fs::last_write_time(entry.path(), ec),
                                 entry.path());
        }
    }
    if (bundles.size() <= kMaxRepros) {
        return;
    }
    std::sort(bundles.begin(), bundles.end()); // oldest first
    const size_t excess = bundles.size() - kMaxRepros;
    for (size_t i = 0; i < excess; ++i) {
        fs::path verilog = bundles[i].second;
        fs::path ring = verilog;
        ring.replace_extension(".jsonl");
        fs::remove(verilog, ec);
        fs::remove(ring, ec);
        journal->record("repro.pruned",
                        telemetry::JsonWriter()
                            .str("file", verilog.filename().string())
                            .num("kept", kMaxRepros)
                            .build());
    }
}

/// On a mismatch, preserves everything needed to reproduce the failure
/// offline: the generated module and a `cascade.events.v1` journal of the
/// stimulus that exposed it, under repro/ in the test's working directory
/// (build/tests/repro under ctest; CI uploads it as an artifact).
std::string
write_repro(uint64_t seed, const std::string& src,
            telemetry::Journal* journal)
{
    std::error_code ec;
    std::filesystem::create_directories("repro", ec);
    const std::string base = "repro/fuzz_" + std::to_string(seed);
    std::ofstream(base + ".v") << src;
    // Prune after writing so the fresh bundle is the newest of the
    // survivors, then dump the ring (which now also carries any
    // repro.pruned events from this pass).
    prune_repros(journal);
    std::string err;
    journal->write_ring(base + ".jsonl",
                        telemetry::JsonWriter()
                            .str("kind", "fuzz_differential")
                            .num("seed", seed)
                            .build(),
                        &err);
    return base;
}

class FuzzDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferential, InterpreterMatchesNetlist)
{
    const std::string src = gen_module(GetParam());
    Diagnostics diags;
    SourceUnit unit = parse(src, &diags);
    ASSERT_FALSE(diags.has_errors()) << diags.str() << "\n" << src;
    Elaborator elab(&diags);
    std::shared_ptr<const ElaboratedModule> em(
        elab.elaborate(*unit.modules[0]));
    ASSERT_NE(em, nullptr) << diags.str() << "\n" << src;

    auto nl = fpga::synthesize(*em, &diags);
    ASSERT_NE(nl, nullptr) << diags.str() << "\n" << src;
    fpga::Bitstream hw(std::shared_ptr<const fpga::Netlist>(std::move(nl)));

    sim::ModuleInterpreter sw(em, nullptr);
    sw.run_initials();
    auto settle = [&sw] {
        for (int i = 0; i < 64; ++i) {
            sw.evaluate();
            if (!sw.there_are_updates()) {
                return;
            }
            sw.update();
        }
    };
    settle();
    hw.eval_comb();

    // Every cycle's stimulus goes into a journal ring large enough to
    // hold the whole run, so a mismatch ships with its full history.
    telemetry::Journal journal(256);
    std::mt19937_64 stim(GetParam() * 977 + 3);
    for (int cycle = 0; cycle < 60; ++cycle) {
        telemetry::JsonWriter inputs;
        inputs.num("cycle", static_cast<uint64_t>(cycle));
        for (const char* in : {"a", "b", "c"}) {
            const BitVector v(8, stim());
            sw.set_input(in, v);
            hw.set_input(in, v);
            inputs.num(in, v.to_uint64());
        }
        journal.record("fuzz.input", inputs.build());
        settle();
        hw.eval_comb();
        sw.set_input("clk", BitVector(1, 1));
        settle();
        hw.set_input("clk", BitVector(1, 1));
        hw.step();
        sw.set_input("clk", BitVector(1, 0));
        settle();
        hw.set_input("clk", BitVector(1, 0));
        hw.step();
        for (const char* out : {"o0", "o1", "o2"}) {
            if (sw.get(out) == hw.output(out)) {
                continue;
            }
            journal.record("fuzz.mismatch",
                           telemetry::JsonWriter()
                               .num("cycle", static_cast<uint64_t>(cycle))
                               .str("output", out)
                               .num("sw", sw.get(out).to_uint64())
                               .num("hw", hw.output(out).to_uint64())
                               .build());
            const std::string base =
                write_repro(GetParam(), src, &journal);
            FAIL() << "cycle " << cycle << " output " << out << ": sw="
                   << sw.get(out).to_uint64()
                   << " hw=" << hw.output(out).to_uint64()
                   << "\nrepro artifacts: " << base << ".v and " << base
                   << ".jsonl\nre-run just this seed with:\n"
                   << "  ./fuzz_differential_test --gtest_filter="
                   << "'Seeds/FuzzDifferential.InterpreterMatchesNetlist/"
                   << (GetParam() - 1) << "'\nmodule:\n"
                   << src;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<uint64_t>(1, 41));

/// The repro directory is bounded: seed it past the cap, prune, and
/// exactly kMaxRepros bundles survive -- the newest ones -- with every
/// eviction journaled as repro.pruned.
TEST(ReproPrune, KeepsNewestBundles)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::remove_all("repro", ec);
    fs::create_directories("repro", ec);

    // Seed kMaxRepros + 5 bundles with strictly increasing mtimes
    // (explicit timestamps: no sleeping on filesystem granularity).
    const auto now = fs::file_time_type::clock::now();
    for (size_t i = 0; i < kMaxRepros + 5; ++i) {
        const std::string base = "repro/fuzz_" + std::to_string(9000 + i);
        std::ofstream(base + ".v") << "// seeded bundle\n";
        std::ofstream(base + ".jsonl") << "{}\n";
        fs::last_write_time(base + ".v",
                            now - std::chrono::seconds(1000 - i), ec);
    }

    telemetry::Journal journal(64);
    prune_repros(&journal);

    size_t survivors = 0;
    bool oldest_gone = true;
    for (const auto& entry : fs::directory_iterator("repro", ec)) {
        if (entry.path().extension() != ".v") {
            continue;
        }
        ++survivors;
        const std::string name = entry.path().filename().string();
        // The five oldest (9000..9004) must be the ones evicted.
        for (size_t i = 0; i < 5; ++i) {
            if (name == "fuzz_" + std::to_string(9000 + i) + ".v") {
                oldest_gone = false;
            }
        }
    }
    EXPECT_EQ(survivors, kMaxRepros);
    EXPECT_TRUE(oldest_gone);

    // The evictions are on the record: dump the ring and count them.
    const std::string ring_path = "repro/prune_audit.jsonl";
    std::string err;
    ASSERT_TRUE(journal.write_ring(ring_path, "{}", &err)) << err;
    std::ifstream in(ring_path);
    std::string line;
    size_t pruned_events = 0;
    while (std::getline(in, line)) {
        if (line.find("\"repro.pruned\"") != std::string::npos) {
            ++pruned_events;
        }
    }
    EXPECT_EQ(pruned_events, 5u);

    fs::remove_all("repro", ec);
}

} // namespace
} // namespace cascade
