/// \file
/// The Fig. 10 transformation: rewrites a standalone subprogram into an
/// AXI-style memory-mapped module suitable for hardware compilation.
///
/// The generated module exposes CLK/RW/ADDR/IN/OUT/WAIT. Inputs and state
/// become MMIO-writable registers; nonblocking assignments are redirected
/// to per-site shadow registers with update-mask bits (committed by the
/// <LATCH> RPC, so the runtime retains control of the evaluate/update
/// split); system tasks save their argument values to dedicated registers
/// and toggle task-mask bits that the software stub polls, which is how
/// unsynthesizable Verilog keeps working from hardware. The <OLOOP> RPC
/// implements open-loop scheduling (§4.4): the module toggles its own
/// clock until the iteration budget is exhausted or a task fires.
///
/// The WrapperMap records the address map the software stub needs to drive
/// the module (variable slots, control addresses, task-site metadata).

#ifndef CASCADE_IR_HW_WRAPPER_H
#define CASCADE_IR_HW_WRAPPER_H

#include <memory>
#include <string>
#include <vector>

#include "common/diagnostics.h"
#include "verilog/elaborate.h"

namespace cascade::ir {

/// One MMIO-addressable variable (32-bit words, little-endian word order).
struct VarSlot {
    std::string name;      ///< net name in the original subprogram
    uint32_t base = 0;     ///< first word address
    uint32_t words = 1;    ///< words per element
    uint32_t width = 1;    ///< bit width per element
    uint32_t elems = 0;    ///< 0 for scalars, element count for memories
    bool writable = false; ///< supports <SET> writes
    bool is_signed = false;
};

enum class TaskKind { Display, Write, Finish, Monitor };

/// One rewritten system-task site.
struct TaskSite {
    TaskKind kind = TaskKind::Display;
    std::string format; ///< empty when the task had no format string
    bool has_format = false;
    /// Indices into WrapperMap::vars of the saved-argument slots.
    std::vector<uint32_t> arg_slots;
    /// Monitor sites only: canonical print of the original statement,
    /// matching the key the software interpreter registers, so the
    /// runtime's once-per-change suppression splices across a sw -> hw
    /// engine handoff.
    std::string key;
};

/// Control-register addresses (all in the high control window).
struct CtrlAddrs {
    uint32_t latch = 0;   ///< write: commit shadow updates
    uint32_t clear = 0;   ///< write: acknowledge task mask
    uint32_t oloop = 0;   ///< write: start open loop with N iterations
    uint32_t updates = 0; ///< read: 1 if shadow updates pending
    uint32_t tasks = 0;   ///< read: pending task-site bitmask
    uint32_t itrs = 0;    ///< read: iterations completed in open loop
    uint32_t vtime = 0;   ///< read/write: virtual time counter
};

struct WrapperMap {
    std::vector<VarSlot> vars;
    std::vector<TaskSite> tasks;
    CtrlAddrs ctrl;
    std::string clock_input; ///< input toggled by the open-loop controller

    const VarSlot* find(const std::string& name) const;
};

/// Constant for the control window base (word address).
inline constexpr uint32_t kCtrlBase = 0x4000'0000;

/// Generates the wrapper for \p em. \p clock_input names the input port the
/// open-loop controller toggles (empty disables open loop). Returns null
/// and reports a diagnostic if the subprogram cannot be compiled to
/// hardware (e.g. system tasks outside edge-triggered blocks).
std::unique_ptr<verilog::ModuleDecl>
generate_hw_wrapper(const verilog::ElaboratedModule& em,
                    const std::string& clock_input, WrapperMap* map,
                    Diagnostics* diags);

} // namespace cascade::ir

#endif // CASCADE_IR_HW_WRAPPER_H
