/// \file
/// Breakpoint/watchpoint manager for the interactive debugger.
///
/// The Debugger owns the armed condition set (`:break <signal> <op>
/// <value>` and `:watch <signal>`) and the change/edge state needed to
/// evaluate it deterministically between timesteps. It is engine-agnostic:
/// the runtime hands it a name->value lookup each evaluation window, so the
/// same point set works whether the program is resident in the interpreter,
/// the modeled fabric, or (via synthesized trigger cells) skips software
/// evaluation entirely.
///
/// Concurrency: the monitor server's `GET /debug` handler lists points from
/// its own thread while the scheduler mutates them, so the point table is
/// internally locked. The hot-path question "is anything armed at all?" is
/// answered by a relaxed atomic counter — a disarmed debugger costs the
/// scheduler one load per timestep window, mirroring the profiler's
/// guarded fast path.
///
/// Semantics:
///  - breakpoints are edge-triggered: the first evaluation after arming
///    establishes a baseline and the point fires on a false->true
///    transition of the condition, so `:break n == 5` set while n is
///    already 5 does not fire until the condition goes away and returns;
///  - watchpoints fire on any value change after the first observation;
///  - comparison is unsigned, with the constant resized to the signal's
///    width (Verilog self-determined context).

#ifndef CASCADE_RUNTIME_DEBUGGER_H
#define CASCADE_RUNTIME_DEBUGGER_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvector.h"

namespace cascade::runtime {

class Debugger {
  public:
    enum class Kind { Break, Watch };

    struct Point {
        uint64_t id = 0;
        Kind kind = Kind::Break;
        std::string signal;
        std::string op;   ///< one of == != < > <= >= (Break only)
        BitVector value;  ///< comparison constant (Break only)
        uint64_t hits = 0;
        /// Evaluation state: baseline established, last observed value
        /// (Watch) and last condition result (Break edge detection).
        bool has_last = false;
        BitVector last;
        bool last_cond = false;
    };

    /// A point firing: which point, on which signal, with what value.
    struct Fire {
        uint64_t id = 0;
        Kind kind = Kind::Break;
        std::string signal;
        BitVector value;
    };

    /// Reads the current value of a named signal, or nullptr when the
    /// signal cannot be read this window (it is then skipped).
    using Lookup = std::function<const BitVector*(const std::string&)>;

    static bool valid_op(const std::string& op);

    /// Unsigned comparison with \p rhs resized to \p lhs's width.
    /// \p op must satisfy valid_op().
    static bool compare(const BitVector& lhs, const std::string& op,
                        const BitVector& rhs);

    /// @{ Point management. add_* return the new point's id (ids are a
    /// monotonic counter, never reused, so journal events referencing
    /// them replay deterministically).
    uint64_t add_break(const std::string& signal, const std::string& op,
                       const BitVector& value);
    uint64_t add_watch(const std::string& signal);
    bool remove(uint64_t id);
    void clear();
    /// @}

    /// True iff any point is armed. One relaxed load; safe (and intended)
    /// for per-timestep hot paths.
    bool armed() const {
        return count_.load(std::memory_order_relaxed) != 0;
    }
    size_t size() const;

    /// Snapshot of the point table (for `:debug` listings and /debug).
    std::vector<Point> points() const;

    /// Evaluates every armed point against \p lookup, updating baselines,
    /// and returns the first point that fires (lowest table position), or
    /// nullopt. All points update their state even when an earlier one
    /// fires, so a single window never double-reports a change.
    std::optional<Fire> evaluate(const Lookup& lookup);

    /// Re-establishes every point's baseline from \p lookup without
    /// firing. Called after a hardware trigger fires (the synthesized
    /// comparator already reported the edge) so software evaluation does
    /// not immediately re-fire on the same condition after eviction.
    void prime(const Lookup& lookup);

    /// Records a hit on \p id (hardware-side fires, where evaluation
    /// happened in the fabric). Returns the point, if it still exists.
    std::optional<Point> note_fire(uint64_t id);

    uint64_t total_fires() const {
        return fires_.load(std::memory_order_relaxed);
    }

  private:
    mutable std::mutex mu_;
    std::vector<Point> points_;
    uint64_t next_id_ = 1;
    std::atomic<size_t> count_{0};
    std::atomic<uint64_t> fires_{0};
};

/// Bounded pre-trigger capture ring: the last `depth` per-cycle samples of
/// a fixed signal set, pushed every timestep while armed and dumped as a
/// VCD window when a trigger fires (ILA-style). Single-owner (the runtime
/// scheduler or one Bitstream); not internally locked.
struct CaptureRing {
    struct Sample {
        uint64_t time = 0;
        std::vector<BitVector> values;
    };

    std::vector<std::string> names;
    std::vector<uint32_t> widths;
    std::deque<Sample> samples;
    size_t depth = 64;

    bool configured() const { return !names.empty(); }

    void push(uint64_t time, std::vector<BitVector> values) {
        samples.push_back(Sample{time, std::move(values)});
        while (samples.size() > depth) {
            samples.pop_front();
        }
    }

    void reset() {
        names.clear();
        widths.clear();
        samples.clear();
    }
};

} // namespace cascade::runtime

#endif // CASCADE_RUNTIME_DEBUGGER_H
