/// \file
/// Needleman-Wunsch example (paper §6.4): the genomics alignment kernel
/// the UT Austin concurrency class implemented on Cascade. Demonstrates
/// printf-style debugging of a hardware design ($display of the score
/// matrix) and $finish-driven completion.

#include <cstdio>
#include <string>

#include "runtime/runtime.h"
#include "workloads/workloads.h"

using cascade::runtime::Runtime;

int
main(int argc, char** argv)
{
    const uint32_t n =
        argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 12;

    Runtime::Options options;
    options.enable_hardware = false; // classroom mode: pure simulation
    Runtime rt(options);
    rt.on_output = [](const std::string& text) {
        std::printf("%s", text.c_str());
    };

    std::printf("aligning two %u-symbol sequences "
                "(match +2, mismatch/gap -1)...\n", n);
    std::string errors;
    if (!rt.eval(cascade::workloads::needleman_wunsch_source(n, 0),
                 &errors)) {
        std::fprintf(stderr, "%s", errors.c_str());
        return 1;
    }
    // Border + matrix, one cell per cycle, with margin.
    rt.run_for_ticks(static_cast<uint64_t>(n + 1) * (n + 1) * 4 + 64);
    if (!rt.finished()) {
        std::fprintf(stderr, "did not finish\n");
        return 1;
    }
    std::printf("(%llu virtual ticks)\n",
                static_cast<unsigned long long>(rt.virtual_ticks()));
    return 0;
}
