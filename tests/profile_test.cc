/// \file
/// Tests for the source-level profiler: per-process trigger counts and
/// timing attribution in the interpreter, profile continuity across a
/// mid-run software-to-hardware adoption (counts monotone, spliced totals
/// identical to a software-only run), and provenance round-tripping from
/// synthesis through technology mapping onto the fabric (every cell
/// resolves to a real source construct; the critical path renders as
/// named user signals, never anonymous node ids).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fpga/bitstream.h"
#include "fpga/compile.h"
#include "fpga/synth.h"
#include "fpga/techmap.h"
#include "runtime/runtime.h"
#include "verilog/parser.h"

namespace cascade {
namespace {

using runtime::Runtime;

const char* const kCounterDesign =
    "reg [7:0] cnt = 0;\n"
    "always @(posedge clk.val) cnt <= cnt + 1;\n";

Runtime::Options
sw_only()
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    return opts;
}

Runtime::Options
hw_fast()
{
    Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;
    opts.open_loop_target_wall_s = 0.02;
    return opts;
}

/// Flattens a profile into identity -> deterministic trigger totals
/// (eval_ns is wall time and excluded on purpose).
std::map<std::string, uint64_t>
trigger_totals(const std::vector<Runtime::ProfileEntry>& entries)
{
    std::map<std::string, uint64_t> out;
    for (const auto& e : entries) {
        std::string id = e.instance + '|' + e.kind + '|' + e.key + '|';
        for (const auto& t : e.triggers) {
            id += t + ',';
        }
        out[id] += e.total_triggers();
    }
    return out;
}

uint64_t
total_of(const Runtime& rt)
{
    uint64_t sum = 0;
    for (const auto& e : rt.profile()) {
        sum += e.total_triggers();
    }
    return sum;
}

// ---------------------------------------------------------------------
// Interpreter-level attribution
// ---------------------------------------------------------------------

TEST(Profile, TriggerCountsExactAndTimingGated)
{
    Runtime rt(sw_only());
    rt.on_output = [](const std::string&) {};
    ASSERT_TRUE(rt.eval(kCounterDesign));
    rt.run_for_ticks(5);

    auto entries = rt.profile();
    ASSERT_EQ(entries.size(), 1u);
    const auto& e = entries[0];
    EXPECT_EQ(e.instance, "root");
    EXPECT_EQ(e.kind, "seq");
    ASSERT_EQ(e.triggers.size(), 1u);
    EXPECT_EQ(e.triggers[0], "posedge clk_val");
    // One posedge per virtual tick, counted even with profiling off.
    EXPECT_EQ(e.sw_triggers, 5u);
    EXPECT_EQ(e.hw_triggers, 0u);
    // Wall-time attribution is behind the profiling switch.
    EXPECT_EQ(e.eval_ns, 0u);
    EXPECT_FALSE(rt.profiling());

    rt.set_profiling(true);
    rt.run_for_ticks(5);
    entries = rt.profile();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].sw_triggers, 10u);
    EXPECT_GT(entries[0].eval_ns, 0u);
}

TEST(Profile, CountsSurviveAppendOnlyEvals)
{
    // Each eval rebuilds every engine; banked accumulators must splice
    // with the new engines' counters instead of restarting from zero.
    Runtime rt(sw_only());
    rt.on_output = [](const std::string&) {};
    ASSERT_TRUE(rt.eval(kCounterDesign));
    rt.run_for_ticks(3);
    ASSERT_TRUE(rt.eval("reg [3:0] other = 0;\n"
                        "always @(posedge clk.val) other <= other + 1;\n"));
    rt.run_for_ticks(2);

    const auto totals = trigger_totals(rt.profile());
    uint64_t cnt_total = 0;
    uint64_t other_total = 0;
    for (const auto& [id, total] : totals) {
        if (id.find("cnt") != std::string::npos) {
            cnt_total = total;
        } else if (id.find("other") != std::string::npos) {
            other_total = total;
        }
    }
    EXPECT_EQ(cnt_total, 5u) << "3 ticks before + 2 after the eval";
    EXPECT_EQ(other_total, 2u) << "only the 2 ticks after its eval";
}

// ---------------------------------------------------------------------
// Continuity across the software-to-hardware transition
// ---------------------------------------------------------------------

TEST(Profile, SplicesAcrossMidRunAdoption)
{
    // Software-only reference run.
    Runtime sw(sw_only());
    sw.on_output = [](const std::string&) {};
    ASSERT_TRUE(sw.eval(kCounterDesign));
    sw.run_for_ticks(3);
    sw.run_for_ticks(3);
    const auto sw_totals = trigger_totals(sw.profile());

    // Same program with a mid-run hardware adoption.
    Runtime hw(hw_fast());
    hw.on_output = [](const std::string&) {};
    ASSERT_TRUE(hw.eval(kCounterDesign));
    hw.run_for_ticks(3);
    const uint64_t before_adopt = total_of(hw);
    ASSERT_TRUE(hw.wait_for_hardware(30.0));
    const uint64_t at_adopt = total_of(hw);
    hw.run_for_ticks(3);
    const auto hw_totals = trigger_totals(hw.profile());

    // Identical process identities and identical deterministic trigger
    // totals — the profile spliced across the engine transition.
    EXPECT_EQ(sw_totals, hw_totals);

    // Monotone, no double-counting at the adoption boundary.
    EXPECT_LE(before_adopt, at_adopt);
    EXPECT_EQ(total_of(hw), 6u);

    // The hardware window really contributed (the last 3 ticks ran on
    // the fabric).
    uint64_t hw_attributed = 0;
    for (const auto& e : hw.profile()) {
        hw_attributed += e.hw_triggers;
    }
    EXPECT_GE(hw_attributed, 3u);
    EXPECT_NE(hw.user_location(), runtime::Location::Software);
}

TEST(Profile, FallbackEvalAfterAdoptionKeepsCounts)
{
    // Adopt hardware, then eval more code (which drops the program back
    // to software): the fabric-attributed window must fold into the
    // accumulators instead of vanishing with the retired hardware engine.
    Runtime rt(hw_fast());
    rt.on_output = [](const std::string&) {};
    ASSERT_TRUE(rt.eval(kCounterDesign));
    rt.run_for_ticks(2);
    ASSERT_TRUE(rt.wait_for_hardware(30.0));
    rt.run_for_ticks(2);
    ASSERT_TRUE(rt.eval("reg tail = 0;\n"
                        "always @(posedge clk.val) tail <= ~tail;\n"));
    EXPECT_EQ(rt.user_location(), runtime::Location::Software);
    rt.run_for_ticks(1);

    const auto totals = trigger_totals(rt.profile());
    uint64_t cnt_total = 0;
    for (const auto& [id, total] : totals) {
        if (id.find("cnt") != std::string::npos) {
            cnt_total = total;
        }
    }
    EXPECT_EQ(cnt_total, 5u) << "2 sw + 2 hw + 1 sw after the eval";
}

// ---------------------------------------------------------------------
// Provenance through the FPGA flow
// ---------------------------------------------------------------------

std::shared_ptr<const verilog::ElaboratedModule>
elaborate_src(std::string_view src)
{
    Diagnostics diags;
    verilog::SourceUnit unit = verilog::parse(src, &diags);
    EXPECT_FALSE(diags.has_errors()) << diags.str();
    verilog::Elaborator elab(&diags);
    auto em = elab.elaborate(*unit.modules[0]);
    EXPECT_NE(em, nullptr) << diags.str();
    return std::shared_ptr<const verilog::ElaboratedModule>(std::move(em));
}

/// A fig. 11-shaped design: registered datapath, wide combinational
/// cone, memory — every structural feature the provenance labels must
/// survive.
const char* const kPowLikeDesign =
    "module pow(input wire clk, input wire [31:0] nonce,\n"
    "           output reg [31:0] digest, output wire hit);\n"
    "  reg [31:0] state = 32'h6a09e667;\n"
    "  wire [31:0] mixed;\n"
    "  assign mixed = (state ^ nonce) + {state[15:0], state[31:16]};\n"
    "  assign hit = digest < 32'h0000ffff;\n"
    "  always @(posedge clk) begin\n"
    "    state <= mixed;\n"
    "    digest <= mixed ^ (nonce >> 3);\n"
    "  end\n"
    "endmodule\n";

bool
looks_anonymous(const std::string& name)
{
    // NetlistBuilder's fallback for an unnamed, unattributed node is
    // "n<id>"; a named path must never contain one.
    if (name.size() < 2 || name[0] != 'n') {
        return false;
    }
    for (size_t i = 1; i < name.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(name[i]))) {
            return false;
        }
    }
    return true;
}

TEST(Provenance, EveryCellResolvesToASourceConstruct)
{
    auto em = elaborate_src(kPowLikeDesign);
    ASSERT_NE(em, nullptr);
    Diagnostics diags;
    auto nl = fpga::synthesize(*em, &diags);
    ASSERT_NE(nl, nullptr) << diags.str();

    const fpga::MappedDesign mapped = fpga::technology_map(*nl);
    ASSERT_FALSE(mapped.cells.empty());
    for (const fpga::Cell& cell : mapped.cells) {
        const std::string& label = nl->source_of(cell.node);
        EXPECT_LT(cell.src, nl->src_labels.size());
        EXPECT_FALSE(label.empty());
        EXPECT_NE(label, "(unattributed)")
            << "cell over node " << cell.node << " ("
            << nl->name_of(cell.node) << ") lost its provenance";
    }
}

TEST(Provenance, CriticalPathNamesSourceLevelSignals)
{
    for (const char* src : {kPowLikeDesign,
                            "module counter(input wire clk,\n"
                            "               output reg [15:0] q);\n"
                            "  always @(posedge clk) q <= q + 1;\n"
                            "endmodule\n"}) {
        auto em = elaborate_src(src);
        ASSERT_NE(em, nullptr);
        fpga::CompileOptions opts;
        opts.effort = 0.05;
        const fpga::CompileResult result = fpga::compile(*em, opts);
        ASSERT_TRUE(result.ok) << result.error;
        const fpga::CompileReport& r = result.report;
        ASSERT_FALSE(r.critical_path_names.empty());
        ASSERT_EQ(r.critical_path_names.size(),
                  r.critical_path_arrival_ns.size());
        for (const std::string& name : r.critical_path_names) {
            EXPECT_FALSE(looks_anonymous(name))
                << "anonymous node id on the critical path: " << name;
        }
        // Arrival times are monotone along the path.
        for (size_t i = 1; i < r.critical_path_arrival_ns.size(); ++i) {
            EXPECT_LE(r.critical_path_arrival_ns[i - 1],
                      r.critical_path_arrival_ns[i] + 1e-9);
        }
    }
}

TEST(Provenance, FabricActivityAggregatesBySource)
{
    auto em = elaborate_src(kPowLikeDesign);
    ASSERT_NE(em, nullptr);
    Diagnostics diags;
    auto nl = fpga::synthesize(*em, &diags);
    ASSERT_NE(nl, nullptr) << diags.str();
    fpga::Bitstream fabric(
        std::shared_ptr<const fpga::Netlist>(std::move(nl)));

    // Profiling off: stepping collects nothing per node.
    fabric.set_input("clk", BitVector(1, 0));
    fabric.set_input("nonce", BitVector(32, 0x1234));
    fabric.step();
    EXPECT_TRUE(fabric.activity_by_source().empty());

    fabric.set_profiling(true);
    for (int cycle = 0; cycle < 8; ++cycle) {
        fabric.set_input("clk", BitVector(1, cycle & 1));
        fabric.step();
    }
    const auto activity = fabric.activity_by_source();
    ASSERT_FALSE(activity.empty());
    uint64_t evals = 0;
    for (const auto& [source, act] : activity) {
        EXPECT_NE(source, "(unattributed)");
        EXPECT_GE(act.evals, act.toggles);
        evals += act.evals;
    }
    EXPECT_GT(evals, 0u);
    // The registered destinations latched: latch counts are always on.
    EXPECT_GT(fabric.latch_count("state"), 0u);
}

} // namespace
} // namespace cascade
