/// \file
/// The export half of the observability subsystem: everything that turns
/// in-process telemetry into operator-facing formats, with no external
/// dependencies.
///
///  - PromWriter renders metric families in the Prometheus text exposition
///    format (one `# HELP`/`# TYPE` block per family, escaped labels,
///    counters suffixed `_total`, histograms as summaries);
///  - validate_prometheus_text() is a strict line-level checker for that
///    format, used by tests and the CI scrape step;
///  - TimeSeries is a fixed-capacity downsampling recorder: the scheduler
///    samples a handful of rates/levels every few hundred milliseconds,
///    and when a series fills up adjacent points are pairwise-averaged so
///    the whole session always fits — recent history at full resolution,
///    the start of the run at progressively coarser resolution. Dumped
///    into the crash black box so post-mortems show the minutes before a
///    crash, not just the last 256 journal events;
///  - SloTracker keeps rolling windows of compile/interrupt latencies and
///    per-tenant tick rates, evaluates them against thresholds from
///    Options, and fires a callback on each OK->breach transition (the
///    Runtime journals it as `slo.breach`).
///
/// The HTTP side lives in telemetry/monitor_server.h; this header is pure
/// data plumbing and is safe to use from any thread (TimeSeries and
/// SloTracker are internally locked).

#ifndef CASCADE_TELEMETRY_EXPORT_H
#define CASCADE_TELEMETRY_EXPORT_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cascade::telemetry {

/// Maps an internal metric name ("compile.cache.hits") onto a legal
/// Prometheus metric name ("cascade_compile_cache_hits"): every character
/// outside [a-zA-Z0-9_:] becomes '_', and the result is prefixed with
/// "cascade_" (also when the first character would otherwise be a digit).
std::string prom_sanitize_name(const std::string& name);

/// Escapes a label value for the text exposition format: backslash,
/// double-quote, and newline must be written \\ \" \n.
std::string prom_escape_label(const std::string& value);

/// Accumulates samples grouped into metric families and renders the
/// Prometheus text exposition format. Samples added to the same family
/// name are emitted together under one `# HELP`/`# TYPE` block, in
/// insertion order, so the output is deterministic.
class PromWriter {
  public:
    using Labels = std::vector<std::pair<std::string, std::string>>;

    /// \p type is "counter", "gauge", "summary", or "untyped".
    /// \p name must already be a legal metric name (prom_sanitize_name).
    void family(const std::string& name, const std::string& type,
                const std::string& help);

    /// Adds one sample to \p family (which must have been declared).
    /// \p suffix is appended to the family name on the sample line only
    /// (summaries use "_sum"/"_count"). Label values are escaped here.
    void sample(const std::string& family, const Labels& labels,
                double value, const std::string& suffix = "");
    void sample(const std::string& family, const Labels& labels,
                uint64_t value, const std::string& suffix = "");

    /// The full exposition: families in declaration order, each as
    /// `# HELP`, `# TYPE`, then its samples. Ends with a newline.
    std::string render() const;

  private:
    struct Family {
        std::string name;
        std::string type;
        std::string help;
        std::vector<std::string> lines;
    };
    Family* find(const std::string& name);

    std::vector<Family> families_;
};

/// Strict validator for the Prometheus text exposition format: metric and
/// label name grammar, label-value escaping, float-parseable values
/// (incl. NaN/+Inf/-Inf), at most one TYPE per family declared before its
/// samples, and a trailing newline. On failure returns false and sets
/// *err to "line N: <what>".
bool validate_prometheus_text(const std::string& text,
                              std::string* err = nullptr);

/// Fixed-memory time-series recorder. Each named series holds at most
/// \p capacity points; on overflow the series is compacted in place by
/// averaging adjacent pairs (halving the point count and doubling
/// \c stride, the number of raw samples each stored point represents).
/// sample()/json()/reset() are thread-safe.
class TimeSeries {
  public:
    static constexpr size_t kDefaultCapacity = 512;

    struct Point {
        double t = 0; ///< seconds since the recorder was created
        double v = 0;
    };

    explicit TimeSeries(size_t capacity = kDefaultCapacity);

    /// Appends (t, v) to the series \p name, creating it on first use.
    void sample(const std::string& name, double t, double v);

    /// Sorted names of every series recorded so far.
    std::vector<std::string> names() const;
    /// Oldest-first copy of one series (empty when unknown).
    std::vector<Point> series(const std::string& name) const;
    /// How many raw samples each stored point of \p name averages.
    uint64_t stride(const std::string& name) const;

    /// {"schema":"cascade.timeseries.v1","capacity":N,"series":{name:
    ///  {"stride":K,"points":[[t,v],...]}}} — t and v at %.6g.
    std::string json() const;

    /// Drops every series (measurement-window bracketing).
    void reset();

  private:
    /// Every stored point is the average of exactly \c stride raw
    /// samples; raw samples accumulate in acc_* until \c stride of them
    /// arrive. Compaction pairwise-averages the stored points and
    /// doubles \c stride, so the invariant holds uniformly across the
    /// series. Readers see the partial accumulator as one provisional
    /// trailing point so the freshest data is never hidden.
    struct Series {
        std::vector<Point> points;
        uint64_t stride = 1;
        double acc_t = 0;
        double acc_v = 0;
        uint64_t acc_n = 0;
    };

    /// Stored points plus the provisional accumulator point (mutex_ held).
    static std::vector<Point> snapshot_locked(const Series& s);

    mutable std::mutex mutex_;
    std::map<std::string, Series> series_;
    size_t capacity_;
};

/// Rolling-window SLO evaluation. Feeds arrive from the runtime thread
/// (compile completions, interrupt flushes, sampled tick rates); tick()
/// — runtime thread only — re-evaluates, updates breach counters, and
/// invokes on_breach for each objective that just transitioned OK->breach;
/// evaluate()/json()/table() are pure reads, safe from the monitor
/// server's thread. A threshold of 0 disables that objective.
class SloTracker {
  public:
    struct Config {
        double window_s = 60;
        double max_cold_compile_p99_s = 0;
        double max_warm_compile_p99_s = 0;
        double max_interrupt_p99_s = 0;
        double min_ticks_per_s = 0;
    };

    struct Objective {
        std::string name;      ///< e.g. "cold_compile_p99_s"
        std::string tenant;    ///< "" for process-wide objectives
        double observed = 0;   ///< current rolling-window statistic
        double threshold = 0;
        bool upper_bound = true; ///< breach when observed > threshold
        uint64_t samples = 0;  ///< points in the window backing \c observed
        bool breached = false;
        uint64_t breaches = 0; ///< cumulative OK->breach transitions
    };

    struct Status {
        bool breached = false; ///< any objective currently breached
        std::vector<Objective> objectives;
    };

    explicit SloTracker(const Config& config);

    /// @{ Feeds (any thread; cheap, bounded memory).
    void record_cold_compile(double now, double seconds);
    void record_warm_compile(double now, double seconds);
    void record_interrupt(double now, double seconds);
    void record_ticks_per_s(double now, const std::string& tenant,
                            double rate);
    /// @}

    /// Re-evaluates every objective at wall-time \p now, updates breach
    /// state/counters, and calls \p on_breach (outside the tracker lock)
    /// once per objective that just entered breach. Runtime thread only —
    /// the callback journals, and journal writes must stay single-source.
    void tick(double now,
              const std::function<void(const Objective&)>& on_breach);

    /// Pure read of the current status as of \p now (no state change).
    Status evaluate(double now) const;

    /// {"schema":"cascade.slo.v1","breached":b,"objectives":[...]}
    std::string json(double now) const;
    /// Fixed-width table (the REPL's :slo view).
    std::string table(double now) const;

    /// Cumulative breach-transition count across all objectives.
    uint64_t total_breaches() const;

    /// Clears windows, breach flags, and breach counters (:stats reset).
    void reset();

    const Config& config() const { return config_; }

  private:
    using Window = std::deque<std::pair<double, double>>; ///< (wall t, v)

    static void push(Window& w, double now, double v);
    void prune(double now);
    /// Appends the current objectives to \p out (mutex_ held).
    void objectives_locked(double now, std::vector<Objective>* out) const;

    static double percentile(const Window& w, double q);

    static constexpr size_t kMaxWindowPoints = 4096;

    const Config config_;
    mutable std::mutex mutex_;
    Window cold_compile_s_;
    Window warm_compile_s_;
    Window interrupt_s_;
    std::map<std::string, Window> ticks_per_s_; ///< keyed by tenant label
    std::map<std::string, bool> breached_;      ///< keyed by name|tenant
    std::map<std::string, uint64_t> breaches_;
    uint64_t total_breaches_ = 0;
};

} // namespace cascade::telemetry

#endif // CASCADE_TELEMETRY_EXPORT_H
