/// \file
/// Token definitions for the Verilog lexer.

#ifndef CASCADE_VERILOG_TOKEN_H
#define CASCADE_VERILOG_TOKEN_H

#include <cstdint>
#include <string>

#include "common/bitvector.h"
#include "common/source_loc.h"

namespace cascade::verilog {

enum class TokenKind {
    EndOfFile,
    Identifier,   ///< foo, \escaped
    SystemId,     ///< $display, $finish, ...
    Number,       ///< 42, 8'h80, 4'sb1010
    String,       ///< "text"

    // Keywords.
    KwModule, KwEndmodule, KwInput, KwOutput, KwInout, KwWire, KwReg,
    KwAssign, KwAlways, KwInitial, KwBegin, KwEnd, KwIf, KwElse,
    KwCase, KwCasez, KwCasex, KwEndcase, KwDefault, KwFor, KwWhile,
    KwRepeat, KwForever, KwPosedge, KwNegedge, KwOr, KwParameter,
    KwLocalparam, KwInteger, KwFunction, KwEndfunction, KwSigned,

    // Punctuation.
    LParen, RParen, LBracket, RBracket, LBrace, RBrace,
    Semi, Colon, Comma, Dot, Hash, At, Question,

    // Operators.
    Assign,        ///< =
    Plus, Minus, Star, Slash, Percent, StarStar,
    EqEq, BangEq, EqEqEq, BangEqEq,
    AmpAmp, PipePipe, Bang,
    Lt, LtEq, Gt, GtEq,
    Shl, Shr, AShl, AShr,          ///< << >> <<< >>>
    Amp, Pipe, Caret, Tilde,
    TildeAmp, TildePipe, TildeCaret,  ///< ~& ~| ~^ (and ^~)
    PlusColon, MinusColon,            ///< +: -:

    Error,
};

/// Returns a human-readable name for diagnostics ("'<='", "identifier", ...).
const char* token_kind_name(TokenKind kind);

/// A lexed token. Number tokens carry their decoded value and sizing
/// metadata; identifiers and strings carry their text.
struct Token {
    TokenKind kind = TokenKind::EndOfFile;
    SourceLoc loc;
    std::string text;

    // Number payload.
    BitVector value;          ///< decoded bits (width = declared or 32)
    bool sized = false;       ///< literal had an explicit size (8'h...)
    bool is_signed = false;   ///< literal had the 's' flag or was plain
};

} // namespace cascade::verilog

#endif // CASCADE_VERILOG_TOKEN_H
