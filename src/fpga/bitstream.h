/// \file
/// The "bitstream": a levelized, cycle-based evaluator for a synthesized
/// netlist. This plays the role of the programmed FPGA fabric in our
/// substrate — orders of magnitude faster than AST interpretation, with
/// per-cycle semantics identical to real registered hardware (including
/// derived/gated clock domains, which cascade within a device cycle).

#ifndef CASCADE_FPGA_BITSTREAM_H
#define CASCADE_FPGA_BITSTREAM_H

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "fpga/fabric_exec.h"
#include "fpga/netlist.h"

namespace cascade::fpga {

class Bitstream : public FabricExec {
  public:
    explicit Bitstream(std::shared_ptr<const Netlist> netlist);

    const Netlist& netlist() const override { return *nl_; }

    /// @{ Port access by name (cached index lookups available below).
    void set_input(const std::string& name, const BitVector& value) override;
    const BitVector& output(const std::string& name) const override;
    int input_index(const std::string& name) const override;
    int output_index(const std::string& name) const override;
    void set_input(int index, const BitVector& value) override;
    const BitVector& output(int index) const override;
    /// @}

    /// Settles all combinational logic for the current inputs/state.
    void eval_comb() override;

    /// One device clock cycle: settle, latch every register whose clock
    /// rose (cascading derived clock domains), settle again.
    void step() override;

    /// @{ Direct state access (used by native mode and tests; the hardware
    /// engine goes through MMIO instead).
    const BitVector& reg_value(const std::string& name) const override;
    void set_reg(const std::string& name, const BitVector& value) override;
    const BitVector& mem_value(const std::string& name,
                               uint64_t idx) const override;
    void set_mem(const std::string& name, uint64_t idx,
                 const BitVector& value) override;
    /// @}

    uint64_t cycles() const override { return cycles_; }

    /// @{ Source-level activity profiling. When enabled, eval_comb counts
    /// per-node evaluations and value toggles; when off, the evaluator
    /// runs the original uninstrumented loop (no per-node overhead).
    /// Register latch events are always counted (one add per actual
    /// latch, far off the hot path).
    void set_profiling(bool on) override;
    bool profiling() const override { return profile_; }
    /// Per-source-construct activity, aggregated over nodes through the
    /// netlist's provenance labels (synth -> techmap -> fabric).
    std::map<std::string, SourceActivity>
    activity_by_source() const override;
    /// Latch events for register \p name (0 if unknown). Every commit of
    /// a new value into the register counts.
    uint64_t latch_count(const std::string& name) const override;
    /// @}

    /// @{ Debugger instrumentation (ILA-style). arm_debug installs the
    /// trigger/probe output set produced by instrument_debug_triggers;
    /// while armed, every step() runs one guarded epilogue (rising-edge /
    /// value-change detection on the trigger outputs, plus a push into the
    /// bounded pre-trigger capture ring). Like profiling, the disarmed
    /// cost is a single branch per step. A fire is sticky — the ring
    /// freezes on the firing cycle so the window survives the MMIO
    /// traffic that follows — until the twin is discarded or cleared.
    void arm_debug(std::vector<DebugTrigger> triggers,
                   std::vector<DebugProbe> probes,
                   size_t ring_depth) override;
    void disarm_debug() override;
    bool debug_armed() const override { return debug_armed_; }
    /// Point id of the first trigger that fired, or 0 while none has.
    uint64_t debug_fired() const override { return debug_fired_; }
    uint64_t debug_fire_cycle() const override { return debug_fire_cycle_; }
    const std::vector<DebugProbe>& debug_probes() const override {
        return debug_probes_;
    }
    const std::deque<DebugSample>& debug_ring() const override {
        return debug_ring_;
    }
    /// @}

  private:
    void eval_range(size_t first);
    void eval_comb_profiled();
    void debug_step_check();

    std::shared_ptr<const Netlist> nl_;
    std::vector<BitVector> values_;       ///< per node
    std::vector<BitVector> reg_state_;    ///< per register
    std::vector<std::vector<BitVector>> mem_state_;
    std::vector<bool> prev_reg_clock_;
    std::vector<bool> prev_port_clock_;
    std::unordered_map<std::string, int> input_index_;
    std::unordered_map<std::string, int> output_index_;
    std::unordered_map<std::string, uint32_t> reg_index_;
    std::unordered_map<std::string, uint32_t> mem_index_;
    uint64_t cycles_ = 0;
    bool profile_ = false;
    std::vector<uint64_t> eval_count_;   ///< per node (profiling only)
    std::vector<uint64_t> toggle_count_; ///< per node (profiling only)
    std::vector<uint64_t> reg_latch_count_; ///< per register (always)

    bool debug_armed_ = false;
    std::vector<DebugTrigger> debug_triggers_;
    std::vector<DebugProbe> debug_probes_;
    std::deque<DebugSample> debug_ring_;
    size_t debug_ring_depth_ = 64;
    uint64_t debug_fired_ = 0;
    uint64_t debug_fire_cycle_ = 0;
};

} // namespace cascade::fpga

#endif // CASCADE_FPGA_BITSTREAM_H
