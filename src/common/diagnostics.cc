#include "common/diagnostics.h"

#include <cstdlib>
#include <cstring>

namespace cascade {

std::string
Diagnostic::str() const
{
    std::string out = severity == Severity::Error ? "error: " : "warning: ";
    if (loc.valid()) {
        out += loc.str() + ": ";
    }
    out += message;
    return out;
}

void
Diagnostics::error(SourceLoc loc, std::string msg)
{
    diags_.push_back({Severity::Error, loc, std::move(msg)});
    ++num_errors_;
}

void
Diagnostics::warning(SourceLoc loc, std::string msg)
{
    diags_.push_back({Severity::Warning, loc, std::move(msg)});
}

std::string
Diagnostics::str() const
{
    std::string out;
    for (const auto& d : diags_) {
        out += d.str();
        out += '\n';
    }
    return out;
}

void
Diagnostics::clear()
{
    diags_.clear();
    num_errors_ = 0;
}

const char*
log_level_name(LogLevel level)
{
    switch (level) {
        case LogLevel::Error: return "error";
        case LogLevel::Warn: return "warn";
        case LogLevel::Info: return "info";
        case LogLevel::Debug: return "debug";
    }
    return "?";
}

namespace {

// Minimal JSON string escaping, duplicated from telemetry to keep common
// at the bottom of the dependency graph.
std::string
log_json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

} // namespace

Logger&
Logger::instance()
{
    static Logger* logger = new Logger(); // leaked: outlives static dtors
    return *logger;
}

Logger::Logger()
{
    const char* env = std::getenv("CASCADE_LOG");
    if (env == nullptr) {
        return;
    }
    std::string spec = env;
    size_t start = 0;
    while (start <= spec.size()) {
        size_t end = spec.find(',', start);
        if (end == std::string::npos) {
            end = spec.size();
        }
        const std::string token = spec.substr(start, end - start);
        if (token == "off") {
            level_ = static_cast<LogLevel>(-1);
        } else if (token == "error") {
            level_ = LogLevel::Error;
        } else if (token == "warn") {
            level_ = LogLevel::Warn;
        } else if (token == "info") {
            level_ = LogLevel::Info;
        } else if (token == "debug") {
            level_ = LogLevel::Debug;
        } else if (token == "json") {
            json_ = true;
        }
        start = end + 1;
    }
}

void
Logger::write(LogLevel level, const char* component,
              const std::string& message)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::FILE* out = stream_ != nullptr ? stream_ : stderr;
    if (json_) {
        std::fprintf(out,
                     "{\"log\":\"cascade\",\"level\":\"%s\","
                     "\"component\":\"%s\",\"msg\":\"%s\"}\n",
                     log_level_name(level), component,
                     log_json_escape(message).c_str());
    } else {
        std::fprintf(out, "cascade[%s] %s: %s\n", log_level_name(level),
                     component, message.c_str());
    }
    std::fflush(out);
}

void
Logger::set_stream(std::FILE* stream)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stream_ = stream;
}

} // namespace cascade
