/// \file
/// CI smoke check for the live monitoring endpoint. Starts a monitored
/// runtime (ephemeral port), runs a small always-block workload, and
/// scrapes every endpoint the way an operator's Prometheus/curl would:
///
///   - /metrics twice: both scrapes must pass the strict text-exposition
///     validator and the virtual-tick gauge must be monotonic between
///     them (counters that go backwards break rate() queries);
///   - /healthz, /slo, /timeseries: status 200 and schema markers;
///   - /requests: the traced-request feed must yield NDJSON objects
///     with request ids and segment partitions;
///   - /events: the live journal tail must yield NDJSON lines whose
///     sequence numbers strictly increase;
///   - /debug: after arming a breakpoint and running to the fire, the
///     debugger snapshot must report the halted point and the
///     cascade_debug_* metric families must be live in /metrics.
///
/// Artifacts (metrics.prom, slo.json, timeseries.json, requests.ndjson,
/// events.ndjson, debug.json) are written next to the binary for CI
/// upload. Exits nonzero on any failure, so the CI step is a real gate
/// on the monitoring surface.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/runtime.h"
#include "telemetry/export.h"
#include "telemetry/journal.h"
#include "telemetry/monitor_server.h"

using cascade::runtime::Runtime;

namespace {

int failures = 0;

void
check(bool ok, const std::string& what)
{
    if (ok) {
        std::fprintf(stderr, "ok   %s\n", what.c_str());
    } else {
        std::fprintf(stderr, "FAIL %s\n", what.c_str());
        ++failures;
    }
}

void
save(const std::string& path, const std::string& body)
{
    std::ofstream out(path);
    out << body;
}

double
metric_value(const std::string& text, const std::string& name)
{
    // First sample line of `name` (exact match or with labels).
    size_t pos = 0;
    while ((pos = text.find(name, pos)) != std::string::npos) {
        const bool line_start = pos == 0 || text[pos - 1] == '\n';
        const size_t after = pos + name.size();
        const char c = after < text.size() ? text[after] : '\0';
        if (line_start && (c == ' ' || c == '{')) {
            const size_t sp = text.find(' ', pos);
            if (sp != std::string::npos) {
                return std::strtod(text.c_str() + sp + 1, nullptr);
            }
        }
        pos = after;
    }
    return -1;
}

} // namespace

int
main()
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    opts.timeseries_interval_s = 0.001;
    Runtime rt(opts);
    check(rt.eval("reg [15:0] n = 0;\n"
                  "always @(posedge clk.val) n <= n + 1;\n"),
          "eval workload");

    std::string err;
    check(rt.start_monitor(0, &err), "start monitor: " + err);
    const uint16_t port = rt.monitor_port();
    std::fprintf(stderr, "# monitoring on 127.0.0.1:%u\n", port);

    rt.run(2048);

    int status = 0;
    std::string first;
    check(cascade::telemetry::http_get(port, "/metrics", &status, &first,
                                       &err) &&
              status == 200,
          "GET /metrics: " + err);
    check(cascade::telemetry::validate_prometheus_text(first, &err),
          "first scrape validates: " + err);

    rt.run(2048);
    std::string second;
    check(cascade::telemetry::http_get(port, "/metrics", &status,
                                       &second, &err) &&
              status == 200,
          "GET /metrics (second): " + err);
    check(cascade::telemetry::validate_prometheus_text(second, &err),
          "second scrape validates: " + err);
    const double ticks1 = metric_value(first, "cascade_virtual_ticks");
    const double ticks2 = metric_value(second, "cascade_virtual_ticks");
    check(ticks1 >= 0 && ticks2 > ticks1,
          "cascade_virtual_ticks monotonic (" + std::to_string(ticks1) +
              " -> " + std::to_string(ticks2) + ")");
    save("metrics.prom", second);

    std::string body;
    check(cascade::telemetry::http_get(port, "/healthz", &status, &body,
                                       &err) &&
              status == 200 &&
              body.find("\"status\":\"ok\"") != std::string::npos,
          "GET /healthz ok: " + body);

    check(cascade::telemetry::http_get(port, "/slo", &status, &body,
                                       &err) &&
              status == 200 &&
              body.find("\"schema\":\"cascade.slo.v1\"") !=
                  std::string::npos,
          "GET /slo schema: " + err);
    save("slo.json", body);

    check(cascade::telemetry::http_get(port, "/timeseries", &status,
                                       &body, &err) &&
              status == 200 &&
              body.find("\"schema\":\"cascade.timeseries.v1\"") !=
                  std::string::npos &&
              body.find("runtime.ticks_per_s") != std::string::npos,
          "GET /timeseries schema + sampled series");
    save("timeseries.json", body);

    // Interactive-debugger surface: arm a breakpoint, run to the fire,
    // and scrape the halted state the way a dashboard would.
    rt.set_debug_window_path("debug-window.vcd");
    const uint64_t point_id = rt.debug_break("n", "==", "2000", &err);
    check(point_id != 0, "arm breakpoint: " + err);
    for (int i = 0; i < 200000 && !rt.debug_halted(); ++i) {
        rt.step();
    }
    check(rt.debug_halted(), "breakpoint fires and halts");

    check(cascade::telemetry::http_get(port, "/debug", &status, &body,
                                       &err) &&
              status == 200 &&
              body.find("\"schema\":\"cascade.debug.v1\"") !=
                  std::string::npos &&
              body.find("\"halted\":true") != std::string::npos &&
              body.find("\"signal\":\"n\"") != std::string::npos,
          "GET /debug schema + halted point");
    save("debug.json", body);

    std::string halted_metrics;
    check(cascade::telemetry::http_get(port, "/metrics", &status,
                                       &halted_metrics, &err) &&
              status == 200 &&
              cascade::telemetry::validate_prometheus_text(halted_metrics,
                                                           &err),
          "halted scrape validates: " + err);
    check(metric_value(halted_metrics, "cascade_debug_points") == 1 &&
              metric_value(halted_metrics, "cascade_debug_fires_total") >=
                  1 &&
              metric_value(halted_metrics, "cascade_debug_halted") == 1,
          "cascade_debug_* families present and firing");

    // The wall-clock heartbeat keeps /timeseries moving while the
    // virtual clock is frozen: the halted gauge must be sampled.
    check(cascade::telemetry::http_get(port, "/timeseries", &status,
                                       &body, &err) &&
              status == 200 &&
              body.find("runtime.halted") != std::string::npos,
          "GET /timeseries samples runtime.halted while frozen");

    check(rt.debug_continue() && !rt.debug_halted(),
          "continue resumes the virtual clock");
    check(rt.debug_delete(point_id), "delete the point");

    check(cascade::telemetry::http_get(port, "/requests", &status, &body,
                                       &err) &&
              status == 200,
          "GET /requests: " + err);
    {
        // NDJSON: at least the eval request, every line a JSON object
        // with an id and a segment partition.
        size_t parsed = 0;
        bool requests_ok = !body.empty();
        size_t start = 0;
        while (start < body.size()) {
            size_t end = body.find('\n', start);
            if (end == std::string::npos) {
                end = body.size();
            }
            const std::string line = body.substr(start, end - start);
            start = end + 1;
            if (line.empty()) {
                continue;
            }
            cascade::telemetry::JsonValue req;
            if (!cascade::telemetry::parse_json(line, &req, &err) ||
                req.get_u64("id") == 0 ||
                line.find("\"segments\":[") == std::string::npos) {
                requests_ok = false;
                break;
            }
            ++parsed;
        }
        check(requests_ok && parsed >= 1,
              "/requests lines parse with ids (" +
                  std::to_string(parsed) + " requests)");
        save("requests.ndjson", body);
    }

    std::vector<std::string> lines;
    check(cascade::telemetry::http_stream_lines(port, "/events", 5,
                                                10000, &lines, &err) &&
              lines.size() >= 5,
          "GET /events streams 5 lines: " + err);
    uint64_t last_seq = 0;
    bool seqs_increase = true;
    std::string ndjson;
    for (const std::string& line : lines) {
        cascade::telemetry::JsonValue ev;
        if (!cascade::telemetry::parse_json(line, &ev, &err)) {
            seqs_increase = false;
            break;
        }
        const uint64_t seq = ev.get_u64("seq");
        if (seq <= last_seq) {
            seqs_increase = false;
        }
        last_seq = seq;
        ndjson += line + "\n";
    }
    check(seqs_increase, "/events lines parse, seq strictly increases");
    save("events.ndjson", ndjson);

    rt.stop_monitor();
    check(!rt.monitoring(), "monitor stops");

    std::fprintf(stderr, failures == 0 ? "# monitor smoke: all ok\n"
                                       : "# monitor smoke: %d failure(s)\n",
                 failures);
    return failures == 0 ? 0 : 1;
}
