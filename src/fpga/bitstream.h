/// \file
/// The "bitstream": a levelized, cycle-based evaluator for a synthesized
/// netlist. This plays the role of the programmed FPGA fabric in our
/// substrate — orders of magnitude faster than AST interpretation, with
/// per-cycle semantics identical to real registered hardware (including
/// derived/gated clock domains, which cascade within a device cycle).

#ifndef CASCADE_FPGA_BITSTREAM_H
#define CASCADE_FPGA_BITSTREAM_H

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "fpga/netlist.h"

namespace cascade::fpga {

class Bitstream {
  public:
    explicit Bitstream(std::shared_ptr<const Netlist> netlist);

    const Netlist& netlist() const { return *nl_; }

    /// @{ Port access by name (cached index lookups available below).
    void set_input(const std::string& name, const BitVector& value);
    const BitVector& output(const std::string& name) const;
    int input_index(const std::string& name) const;
    int output_index(const std::string& name) const;
    void set_input(int index, const BitVector& value);
    const BitVector& output(int index) const;
    /// @}

    /// Settles all combinational logic for the current inputs/state.
    void eval_comb();

    /// One device clock cycle: settle, latch every register whose clock
    /// rose (cascading derived clock domains), settle again.
    void step();

    /// @{ Direct state access (used by native mode and tests; the hardware
    /// engine goes through MMIO instead).
    const BitVector& reg_value(const std::string& name) const;
    void set_reg(const std::string& name, const BitVector& value);
    const BitVector& mem_value(const std::string& name, uint64_t idx) const;
    void set_mem(const std::string& name, uint64_t idx,
                 const BitVector& value);
    /// @}

    uint64_t cycles() const { return cycles_; }

    /// @{ Source-level activity profiling. When enabled, eval_comb counts
    /// per-node evaluations and value toggles; when off, the evaluator
    /// runs the original uninstrumented loop (no per-node overhead).
    /// Register latch events are always counted (one add per actual
    /// latch, far off the hot path).
    void set_profiling(bool on);
    bool profiling() const { return profile_; }
    /// Per-source-construct activity, aggregated over nodes through the
    /// netlist's provenance labels (synth -> techmap -> fabric).
    struct SourceActivity {
        uint64_t evals = 0;   ///< node evaluations attributed to the label
        uint64_t toggles = 0; ///< evaluations that changed the value
    };
    std::map<std::string, SourceActivity> activity_by_source() const;
    /// Latch events for register \p name (0 if unknown). Every commit of
    /// a new value into the register counts.
    uint64_t latch_count(const std::string& name) const;
    /// @}

    /// @{ Debugger instrumentation (ILA-style). arm_debug installs the
    /// trigger/probe output set produced by instrument_debug_triggers;
    /// while armed, every step() runs one guarded epilogue (rising-edge /
    /// value-change detection on the trigger outputs, plus a push into the
    /// bounded pre-trigger capture ring). Like profiling, the disarmed
    /// cost is a single branch per step. A fire is sticky — the ring
    /// freezes on the firing cycle so the window survives the MMIO
    /// traffic that follows — until the twin is discarded or cleared.
    struct DebugTrigger {
        uint64_t id = 0;    ///< debugger point id (reported on fire)
        int output = -1;    ///< trigger cell's output index
        bool watch = false; ///< change-detect instead of condition edge
        bool has_prev = false;
        BitVector prev;
    };
    struct DebugProbe {
        std::string name;
        int output = -1;
        uint32_t width = 1;
    };
    struct DebugSample {
        uint64_t cycle = 0; ///< device cycle (cycles())
        std::vector<BitVector> values; ///< parallel to debug_probes()
    };
    void arm_debug(std::vector<DebugTrigger> triggers,
                   std::vector<DebugProbe> probes, size_t ring_depth);
    void disarm_debug();
    bool debug_armed() const { return debug_armed_; }
    /// Point id of the first trigger that fired, or 0 while none has.
    uint64_t debug_fired() const { return debug_fired_; }
    uint64_t debug_fire_cycle() const { return debug_fire_cycle_; }
    const std::vector<DebugProbe>& debug_probes() const {
        return debug_probes_;
    }
    const std::deque<DebugSample>& debug_ring() const {
        return debug_ring_;
    }
    /// @}

  private:
    void eval_range(size_t first);
    void eval_comb_profiled();
    void debug_step_check();

    std::shared_ptr<const Netlist> nl_;
    std::vector<BitVector> values_;       ///< per node
    std::vector<BitVector> reg_state_;    ///< per register
    std::vector<std::vector<BitVector>> mem_state_;
    std::vector<bool> prev_reg_clock_;
    std::vector<bool> prev_port_clock_;
    std::unordered_map<std::string, int> input_index_;
    std::unordered_map<std::string, int> output_index_;
    std::unordered_map<std::string, uint32_t> reg_index_;
    std::unordered_map<std::string, uint32_t> mem_index_;
    uint64_t cycles_ = 0;
    bool profile_ = false;
    std::vector<uint64_t> eval_count_;   ///< per node (profiling only)
    std::vector<uint64_t> toggle_count_; ///< per node (profiling only)
    std::vector<uint64_t> reg_latch_count_; ///< per register (always)

    bool debug_armed_ = false;
    std::vector<DebugTrigger> debug_triggers_;
    std::vector<DebugProbe> debug_probes_;
    std::deque<DebugSample> debug_ring_;
    size_t debug_ring_depth_ = 64;
    uint64_t debug_fired_ = 0;
    uint64_t debug_fire_cycle_ = 0;
};

} // namespace cascade::fpga

#endif // CASCADE_FPGA_BITSTREAM_H
