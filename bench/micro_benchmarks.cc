/// \file
/// Google-benchmark micro suite for the substrate hot paths: BitVector
/// arithmetic, interpreter scheduling, levelized bitstream evaluation, and
/// the MMIO transaction path. These are the quantities the macro benches
/// (Figs. 11/12) are built from.

#include <benchmark/benchmark.h>

#include <mutex>

#include "fpga/bitstream.h"
#include "fpga/synth.h"
#include "jit/jit_cache.h"
#include "jit/jit_kernel.h"
#include "runtime/runtime.h"
#include "sim/interpreter.h"
#include "telemetry/sync.h"
#include "verilog/parser.h"
#include "workloads/workloads.h"

namespace {

using namespace cascade;

void
BM_BitVectorAdd(benchmark::State& state)
{
    const uint32_t w = static_cast<uint32_t>(state.range(0));
    BitVector a = BitVector::all_ones(w);
    BitVector b(w, 12345);
    for (auto _ : state) {
        benchmark::DoNotOptimize(BitVector::add(a, b));
    }
}
BENCHMARK(BM_BitVectorAdd)->Arg(8)->Arg(32)->Arg(64)->Arg(256);

void
BM_BitVectorMul(benchmark::State& state)
{
    const uint32_t w = static_cast<uint32_t>(state.range(0));
    BitVector a = BitVector::all_ones(w);
    BitVector b(w, 98765);
    for (auto _ : state) {
        benchmark::DoNotOptimize(BitVector::mul(a, b));
    }
}
BENCHMARK(BM_BitVectorMul)->Arg(32)->Arg(256);

std::shared_ptr<const verilog::ElaboratedModule>
counter_module()
{
    static std::shared_ptr<const verilog::ElaboratedModule> em = [] {
        Diagnostics diags;
        auto unit = verilog::parse(R"(
            module M(input wire clk, output wire [31:0] o);
              reg [31:0] cnt = 0;
              always @(posedge clk) cnt <= cnt * 3 + 1;
              assign o = cnt ^ (cnt >> 7);
            endmodule
        )", &diags);
        verilog::Elaborator elab(&diags);
        return std::shared_ptr<const verilog::ElaboratedModule>(
            elab.elaborate(*unit.modules[0]));
    }();
    return em;
}

void
BM_InterpreterTick(benchmark::State& state)
{
    sim::ModuleInterpreter interp(counter_module(), nullptr);
    interp.run_initials();
    bool level = false;
    for (auto _ : state) {
        level = !level;
        interp.set_input("clk", BitVector(1, level ? 1 : 0));
        interp.evaluate();
        if (interp.there_are_updates()) {
            interp.update();
        }
        interp.evaluate();
    }
}
BENCHMARK(BM_InterpreterTick);

/// Same loop with the source-level profiler toggled by the benchmark arg.
/// Arg(0) vs Arg(1) vs BM_InterpreterTick is the acceptance check that
/// disabled profiling costs nothing on the interpreter hot path (counts
/// are always kept; only the per-process clock reads are gated).
void
BM_InterpreterTickProfiling(benchmark::State& state)
{
    sim::ModuleInterpreter interp(counter_module(), nullptr);
    interp.set_profiling(state.range(0) != 0);
    interp.run_initials();
    bool level = false;
    for (auto _ : state) {
        level = !level;
        interp.set_input("clk", BitVector(1, level ? 1 : 0));
        interp.evaluate();
        if (interp.there_are_updates()) {
            interp.update();
        }
        interp.evaluate();
    }
}
BENCHMARK(BM_InterpreterTickProfiling)->Arg(0)->Arg(1);

void
BM_BitstreamCycle(benchmark::State& state)
{
    Diagnostics diags;
    auto nl = fpga::synthesize(*counter_module(), &diags);
    fpga::Bitstream bs(std::shared_ptr<const fpga::Netlist>(std::move(nl)));
    bool level = false;
    for (auto _ : state) {
        level = !level;
        bs.set_input("clk", BitVector(1, level ? 1 : 0));
        bs.step();
    }
}
BENCHMARK(BM_BitstreamCycle);

/// The same netlist through the native-code JIT tier. The acceptance
/// gate for the tier (EXPERIMENTS.md) is >=10x over BM_BitstreamCycle:
/// levelized dispatch, BitVector boxing, and per-cell virtual calls all
/// compile away. Skips when no system compiler is usable.
void
BM_JitCycle(benchmark::State& state)
{
    if (!jit::compiler_available()) {
        state.SkipWithError("no system compiler; JIT tier unavailable");
        return;
    }
    Diagnostics diags;
    auto nl = fpga::synthesize(*counter_module(), &diags);
    std::shared_ptr<const fpga::Netlist> shared(std::move(nl));
    std::string error;
    auto kern = jit::JitKernel::create(shared, &error);
    if (kern == nullptr) {
        state.SkipWithError(("jit build failed: " + error).c_str());
        return;
    }
    bool level = false;
    for (auto _ : state) {
        level = !level;
        kern->set_input("clk", BitVector(1, level ? 1 : 0));
        kern->step();
    }
}
BENCHMARK(BM_JitCycle);

/// Fabric-activity counters toggled by the benchmark arg; Arg(0) must
/// match BM_BitstreamCycle (the instrumented eval is a separate twin, so
/// the disabled path carries no per-cell bookkeeping).
void
BM_BitstreamCycleProfiling(benchmark::State& state)
{
    Diagnostics diags;
    auto nl = fpga::synthesize(*counter_module(), &diags);
    fpga::Bitstream bs(std::shared_ptr<const fpga::Netlist>(std::move(nl)));
    bs.set_profiling(state.range(0) != 0);
    bool level = false;
    for (auto _ : state) {
        level = !level;
        bs.set_input("clk", BitVector(1, level ? 1 : 0));
        bs.step();
    }
}
BENCHMARK(BM_BitstreamCycleProfiling)->Arg(0)->Arg(1);

void
BM_ShaBitstreamCycle(benchmark::State& state)
{
    Diagnostics diags;
    auto unit = verilog::parse(workloads::proof_of_work_module(16), &diags);
    verilog::Elaborator elab(&diags);
    std::shared_ptr<const verilog::ElaboratedModule> em(
        elab.elaborate(*unit.modules[0]));
    auto nl = fpga::synthesize(*em, &diags);
    fpga::Bitstream bs(std::shared_ptr<const fpga::Netlist>(std::move(nl)));
    bool level = false;
    for (auto _ : state) {
        level = !level;
        bs.set_input("clk", BitVector(1, level ? 1 : 0));
        bs.step();
    }
}
BENCHMARK(BM_ShaBitstreamCycle);

/// The SHA round datapath through the JIT tier — the wide-datapath
/// counterpart of BM_JitCycle (compare against BM_ShaBitstreamCycle).
void
BM_ShaJitCycle(benchmark::State& state)
{
    if (!jit::compiler_available()) {
        state.SkipWithError("no system compiler; JIT tier unavailable");
        return;
    }
    Diagnostics diags;
    auto unit = verilog::parse(workloads::proof_of_work_module(16), &diags);
    verilog::Elaborator elab(&diags);
    std::shared_ptr<const verilog::ElaboratedModule> em(
        elab.elaborate(*unit.modules[0]));
    auto nl = fpga::synthesize(*em, &diags);
    std::shared_ptr<const fpga::Netlist> shared(std::move(nl));
    std::string error;
    auto kern = jit::JitKernel::create(shared, &error);
    if (kern == nullptr) {
        state.SkipWithError(("jit build failed: " + error).c_str());
        return;
    }
    bool level = false;
    for (auto _ : state) {
        level = !level;
        kern->set_input("clk", BitVector(1, level ? 1 : 0));
        kern->step();
    }
}
BENCHMARK(BM_ShaJitCycle);

/// Uncontended lock/unlock cost of the raw std::mutex — the baseline for
/// BM_TelemetryMutexLockUnlock below.
void
BM_StdMutexLockUnlock(benchmark::State& state)
{
    std::mutex m;
    for (auto _ : state) {
        m.lock();
        benchmark::DoNotOptimize(&m);
        m.unlock();
    }
}
BENCHMARK(BM_StdMutexLockUnlock);

/// Instrumented wrapper on its uncontended fast path (try_lock success:
/// two relaxed counter bumps, an owner store, and two clock reads).
/// Compare against BM_StdMutexLockUnlock for the wrapper overhead; with
/// CASCADE_SYNC_TELEMETRY=0 the two must be indistinguishable.
void
BM_TelemetryMutexLockUnlock(benchmark::State& state)
{
    telemetry::Mutex m("bench.micro");
    for (auto _ : state) {
        m.lock();
        benchmark::DoNotOptimize(&m);
        m.unlock();
    }
}
BENCHMARK(BM_TelemetryMutexLockUnlock);

/// Runtime scheduler tick with the interactive debugger disarmed (0) vs
/// one armed-but-never-firing breakpoint (1). The disarmed cost is the
/// guarded fast path -- a single relaxed atomic load per inter-timestep
/// window -- so Arg(0) must sit within noise of a build that predates
/// the debugger entirely; Arg(1) prices the per-window condition sweep.
void
BM_RuntimeTickDebugger(benchmark::State& state)
{
    using cascade::runtime::Runtime;
    Runtime::Options opts;
    opts.enable_hardware = false;
    Runtime rt(opts);
    rt.on_output = [](const std::string&) {};
    std::string errors;
    rt.eval("reg [31:0] cnt = 0; "
            "always @(posedge clk.val) cnt <= cnt + 1;",
            &errors);
    if (state.range(0) != 0) {
        rt.debug_break("cnt", "==", "4000000000", &errors);
    }
    for (auto _ : state) {
        rt.run_for_ticks(1);
    }
}
BENCHMARK(BM_RuntimeTickDebugger)->Arg(0)->Arg(1);

void
BM_RuntimeEval(benchmark::State& state)
{
    using cascade::runtime::Runtime;
    for (auto _ : state) {
        Runtime::Options opts;
        opts.enable_hardware = false;
        Runtime rt(opts);
        std::string errors;
        benchmark::DoNotOptimize(rt.eval(
            "Led#(8) led(); reg [7:0] c = 0; "
            "always @(posedge clk.val) c <= c + 1; assign led.val = c;",
            &errors));
    }
}
BENCHMARK(BM_RuntimeEval);

} // namespace

BENCHMARK_MAIN();
