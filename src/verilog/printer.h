/// \file
/// Pretty-printer: renders AST back to canonical Verilog source. Used by the
/// IR transforms (whose outputs are themselves Verilog subprograms), by
/// debugging aids, and by round-trip tests (parse(print(ast)) == ast).

#ifndef CASCADE_VERILOG_PRINTER_H
#define CASCADE_VERILOG_PRINTER_H

#include <string>

#include "verilog/ast.h"

namespace cascade::verilog {

std::string print(const Expr& expr);
std::string print(const Stmt& stmt, int indent = 0);
std::string print(const ModuleItem& item, int indent = 0);
std::string print(const ModuleDecl& module);
std::string print(const SourceUnit& unit);

} // namespace cascade::verilog

#endif // CASCADE_VERILOG_PRINTER_H
