/// \file
/// Software engines (paper §5.1): cycle-accurate event-driven
/// interpretation of a subprogram, iVerilog style. Quickly created, slowly
/// executed — the starting point of every user subprogram's life.

#ifndef CASCADE_RUNTIME_SW_ENGINE_H
#define CASCADE_RUNTIME_SW_ENGINE_H

#include <memory>

#include "runtime/engine.h"
#include "verilog/elaborate.h"

namespace cascade::runtime {

class SwEngine : public Engine, private sim::SystemTaskHandler {
  public:
    /// \p initial_skip: per-initial-block skip mask for blocks that
    /// already executed in a previous engine incarnation of this
    /// subprogram (REPL evals append items; old initials must not
    /// re-fire). \p hardware_resident marks pre-compiled standard-library
    /// components, which the paper places in hardware immediately.
    SwEngine(std::shared_ptr<const verilog::ElaboratedModule> em,
             EngineCallbacks* callbacks,
             const std::vector<bool>& initial_skip = {},
             bool hardware_resident = false);

    sim::StateSnapshot get_state() override;
    void set_state(const sim::StateSnapshot& snapshot) override;
    void read(const Event& event) override;
    std::vector<Event> write() override;
    bool there_are_evals() override;
    void evaluate() override;
    bool there_are_updates() override;
    void update() override;
    void end_step() override;
    bool finished() const override;
    bool is_hardware() const override { return hardware_resident_; }

    std::optional<BitVector> peek(const std::string& name) override
    {
        const BitVector* v = interp_.find(name);
        return v != nullptr ? std::optional<BitVector>(*v) : std::nullopt;
    }

    const verilog::ElaboratedModule& module() const
    {
        return interp_.module();
    }

    /// Total initial blocks in this subprogram (for the runtime's skip
    /// bookkeeping).
    size_t initial_count() const { return initial_count_; }

    /// @{ Interpreter telemetry, surfaced for Runtime::stats_json().
    uint64_t evaluate_calls() const { return interp_.evaluate_calls(); }
    uint64_t update_calls() const { return interp_.update_calls(); }
    uint64_t process_executions() const
    {
        return interp_.process_executions();
    }
    /// @}

    /// @{ Source-level profiling (Runtime::profile_json / REPL :profile).
    /// Per-process trigger counts are always collected; eval-ns wall
    /// attribution follows the interpreter's profiling flag.
    void set_profiling(bool on) { interp_.set_profiling(on); }
    std::vector<sim::ProcessProfile> profile() const
    {
        return interp_.profile();
    }
    /// @}

  private:
    void on_display(const std::string& text) override;
    void on_write(const std::string& text) override;
    void on_finish() override;
    uint64_t current_time() const override;
    void on_monitor(const std::string& key, const std::string& text) override;
    void on_dumpfile(const std::string& path) override;
    void on_dumpvars() override;
    void on_dumpoff() override;
    void on_dumpon() override;

    EngineCallbacks* callbacks_;
    sim::ModuleInterpreter interp_;
    /// Port index -> net id, built from the subprogram's port order.
    std::vector<uint32_t> port_nets_;
    std::vector<int32_t> net_to_port_;
    size_t initial_count_ = 0;
    bool hardware_resident_ = false;
};

} // namespace cascade::runtime

#endif // CASCADE_RUNTIME_SW_ENGINE_H
