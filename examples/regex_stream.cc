/// \file
/// Streaming regular-expression example (paper §6.2): a DFA for
/// "GET /[a-z]+ " consumes bytes from the standard-library FIFO one at a
/// time. The same program works against the software engine and, after the
/// JIT finishes, against hardware — the host-to-FPGA transport moves to
/// MMIO without any code changes.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/runtime.h"
#include "workloads/workloads.h"

using cascade::runtime::Runtime;

int
main()
{
    Runtime::Options options;
    options.compile_effort = 0.3;
    options.open_loop_iterations = 2048;
    Runtime rt(options);
    rt.on_output = [](const std::string& text) {
        std::printf("  %s", text.c_str());
    };

    std::string errors;
    if (!rt.eval(cascade::workloads::regex_stream_source(true), &errors)) {
        std::fprintf(stderr, "%s", errors.c_str());
        return 1;
    }

    const std::string log =
        "GET /index x POST /form GET /api GET/broken GET /q "
        "HEAD / GET /files GET /z ";
    std::vector<uint8_t> bytes(log.begin(), log.end());

    std::printf("streaming %zu bytes through the software engine...\n",
                bytes.size());
    rt.fifo_push(bytes);
    rt.run_for_ticks(4 * bytes.size() + 64);
    std::printf("matches so far: %llu (consumed %llu bytes)\n",
                static_cast<unsigned long long>(
                    rt.led_state().to_uint64()),
                static_cast<unsigned long long>(
                    rt.fifo_bytes_consumed()));

    std::printf("waiting for the hardware engine...\n");
    const auto start = std::chrono::steady_clock::now();
    while (!rt.hardware_ready() &&
           std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
                   .count() < 120.0) {
        rt.run(256);
    }
    if (rt.hardware_ready()) {
        std::printf("streaming the same log from hardware...\n");
        rt.fifo_push(bytes);
        uint64_t guard = 0;
        while (rt.fifo_backlog() > 0 && ++guard < 100000) {
            rt.run(16);
        }
        rt.run(64);
        std::printf("total matches: %llu (consumed %llu bytes)\n",
                    static_cast<unsigned long long>(
                        rt.led_state().to_uint64()),
                    static_cast<unsigned long long>(
                        rt.fifo_bytes_consumed()));
    }
    return 0;
}
