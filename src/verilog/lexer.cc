#include "verilog/lexer.h"

#include <cctype>
#include <unordered_map>

#include "common/check.h"

namespace cascade::verilog {

namespace {

const std::unordered_map<std::string_view, TokenKind>&
keyword_map()
{
    static const std::unordered_map<std::string_view, TokenKind> map = {
        {"module", TokenKind::KwModule},
        {"endmodule", TokenKind::KwEndmodule},
        {"input", TokenKind::KwInput},
        {"output", TokenKind::KwOutput},
        {"inout", TokenKind::KwInout},
        {"wire", TokenKind::KwWire},
        {"reg", TokenKind::KwReg},
        {"assign", TokenKind::KwAssign},
        {"always", TokenKind::KwAlways},
        {"initial", TokenKind::KwInitial},
        {"begin", TokenKind::KwBegin},
        {"end", TokenKind::KwEnd},
        {"if", TokenKind::KwIf},
        {"else", TokenKind::KwElse},
        {"case", TokenKind::KwCase},
        {"casez", TokenKind::KwCasez},
        {"casex", TokenKind::KwCasex},
        {"endcase", TokenKind::KwEndcase},
        {"default", TokenKind::KwDefault},
        {"for", TokenKind::KwFor},
        {"while", TokenKind::KwWhile},
        {"repeat", TokenKind::KwRepeat},
        {"forever", TokenKind::KwForever},
        {"posedge", TokenKind::KwPosedge},
        {"negedge", TokenKind::KwNegedge},
        {"or", TokenKind::KwOr},
        {"parameter", TokenKind::KwParameter},
        {"localparam", TokenKind::KwLocalparam},
        {"integer", TokenKind::KwInteger},
        {"function", TokenKind::KwFunction},
        {"endfunction", TokenKind::KwEndfunction},
        {"signed", TokenKind::KwSigned},
    };
    return map;
}

/// Bits per digit for a base character, or 0 for decimal.
uint32_t
bits_per_digit(char base)
{
    switch (base) {
      case 'b': return 1;
      case 'o': return 3;
      case 'h': return 4;
      case 'd': return 0;
      default: CASCADE_UNREACHABLE();
    }
}

int
digit_value(char c)
{
    if (c >= '0' && c <= '9') {
        return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
        return c - 'a' + 10;
    }
    if (c >= 'A' && c <= 'F') {
        return c - 'A' + 10;
    }
    return -1;
}

} // namespace

const char*
token_kind_name(TokenKind kind)
{
    switch (kind) {
      case TokenKind::EndOfFile: return "end of input";
      case TokenKind::Identifier: return "identifier";
      case TokenKind::SystemId: return "system identifier";
      case TokenKind::Number: return "number";
      case TokenKind::String: return "string";
      case TokenKind::KwModule: return "'module'";
      case TokenKind::KwEndmodule: return "'endmodule'";
      case TokenKind::KwInput: return "'input'";
      case TokenKind::KwOutput: return "'output'";
      case TokenKind::KwInout: return "'inout'";
      case TokenKind::KwWire: return "'wire'";
      case TokenKind::KwReg: return "'reg'";
      case TokenKind::KwAssign: return "'assign'";
      case TokenKind::KwAlways: return "'always'";
      case TokenKind::KwInitial: return "'initial'";
      case TokenKind::KwBegin: return "'begin'";
      case TokenKind::KwEnd: return "'end'";
      case TokenKind::KwIf: return "'if'";
      case TokenKind::KwElse: return "'else'";
      case TokenKind::KwCase: return "'case'";
      case TokenKind::KwCasez: return "'casez'";
      case TokenKind::KwCasex: return "'casex'";
      case TokenKind::KwEndcase: return "'endcase'";
      case TokenKind::KwDefault: return "'default'";
      case TokenKind::KwFor: return "'for'";
      case TokenKind::KwWhile: return "'while'";
      case TokenKind::KwRepeat: return "'repeat'";
      case TokenKind::KwForever: return "'forever'";
      case TokenKind::KwPosedge: return "'posedge'";
      case TokenKind::KwNegedge: return "'negedge'";
      case TokenKind::KwOr: return "'or'";
      case TokenKind::KwParameter: return "'parameter'";
      case TokenKind::KwLocalparam: return "'localparam'";
      case TokenKind::KwInteger: return "'integer'";
      case TokenKind::KwFunction: return "'function'";
      case TokenKind::KwEndfunction: return "'endfunction'";
      case TokenKind::KwSigned: return "'signed'";
      case TokenKind::LParen: return "'('";
      case TokenKind::RParen: return "')'";
      case TokenKind::LBracket: return "'['";
      case TokenKind::RBracket: return "']'";
      case TokenKind::LBrace: return "'{'";
      case TokenKind::RBrace: return "'}'";
      case TokenKind::Semi: return "';'";
      case TokenKind::Colon: return "':'";
      case TokenKind::Comma: return "','";
      case TokenKind::Dot: return "'.'";
      case TokenKind::Hash: return "'#'";
      case TokenKind::At: return "'@'";
      case TokenKind::Question: return "'?'";
      case TokenKind::Assign: return "'='";
      case TokenKind::Plus: return "'+'";
      case TokenKind::Minus: return "'-'";
      case TokenKind::Star: return "'*'";
      case TokenKind::Slash: return "'/'";
      case TokenKind::Percent: return "'%'";
      case TokenKind::StarStar: return "'**'";
      case TokenKind::EqEq: return "'=='";
      case TokenKind::BangEq: return "'!='";
      case TokenKind::EqEqEq: return "'==='";
      case TokenKind::BangEqEq: return "'!=='";
      case TokenKind::AmpAmp: return "'&&'";
      case TokenKind::PipePipe: return "'||'";
      case TokenKind::Bang: return "'!'";
      case TokenKind::Lt: return "'<'";
      case TokenKind::LtEq: return "'<='";
      case TokenKind::Gt: return "'>'";
      case TokenKind::GtEq: return "'>='";
      case TokenKind::Shl: return "'<<'";
      case TokenKind::Shr: return "'>>'";
      case TokenKind::AShl: return "'<<<'";
      case TokenKind::AShr: return "'>>>'";
      case TokenKind::Amp: return "'&'";
      case TokenKind::Pipe: return "'|'";
      case TokenKind::Caret: return "'^'";
      case TokenKind::Tilde: return "'~'";
      case TokenKind::TildeAmp: return "'~&'";
      case TokenKind::TildePipe: return "'~|'";
      case TokenKind::TildeCaret: return "'~^'";
      case TokenKind::PlusColon: return "'+:'";
      case TokenKind::MinusColon: return "'-:'";
      case TokenKind::Error: return "invalid token";
    }
    return "token";
}

Lexer::Lexer(std::string_view source, Diagnostics* diags)
    : source_(source), diags_(diags)
{
    CASCADE_CHECK(diags != nullptr);
}

std::vector<Token>
Lexer::lex_all()
{
    std::vector<Token> tokens;
    while (true) {
        Token t = next_token();
        const bool done = t.kind == TokenKind::EndOfFile;
        if (t.kind != TokenKind::Error) {
            tokens.push_back(std::move(t));
        }
        if (done) {
            break;
        }
    }
    return tokens;
}

char
Lexer::peek(size_t ahead) const
{
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char
Lexer::advance()
{
    const char c = source_[pos_++];
    if (c == '\n') {
        ++line_;
        column_ = 1;
    } else {
        ++column_;
    }
    return c;
}

bool
Lexer::match(char c)
{
    if (!at_end() && peek() == c) {
        advance();
        return true;
    }
    return false;
}

void
Lexer::skip_whitespace_and_comments()
{
    while (!at_end()) {
        const char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (!at_end() && peek() != '\n') {
                advance();
            }
        } else if (c == '/' && peek(1) == '*') {
            const SourceLoc start = here();
            advance();
            advance();
            bool closed = false;
            while (!at_end()) {
                if (peek() == '*' && peek(1) == '/') {
                    advance();
                    advance();
                    closed = true;
                    break;
                }
                advance();
            }
            if (!closed) {
                diags_->error(start, "unterminated block comment");
            }
        } else {
            break;
        }
    }
}

Token
Lexer::next_token()
{
    skip_whitespace_and_comments();
    Token tok;
    tok.loc = here();
    if (at_end()) {
        tok.kind = TokenKind::EndOfFile;
        return tok;
    }

    const char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == '\\') {
        return lex_identifier();
    }
    if (c == '$') {
        return lex_system_id();
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
        return lex_number();
    }
    if (c == '"') {
        return lex_string();
    }

    advance();
    switch (c) {
      case '(': tok.kind = TokenKind::LParen; return tok;
      case ')': tok.kind = TokenKind::RParen; return tok;
      case '[': tok.kind = TokenKind::LBracket; return tok;
      case ']': tok.kind = TokenKind::RBracket; return tok;
      case '{': tok.kind = TokenKind::LBrace; return tok;
      case '}': tok.kind = TokenKind::RBrace; return tok;
      case ';': tok.kind = TokenKind::Semi; return tok;
      case ':': tok.kind = TokenKind::Colon; return tok;
      case ',': tok.kind = TokenKind::Comma; return tok;
      case '.': tok.kind = TokenKind::Dot; return tok;
      case '#': tok.kind = TokenKind::Hash; return tok;
      case '@': tok.kind = TokenKind::At; return tok;
      case '?': tok.kind = TokenKind::Question; return tok;
      case '+':
        tok.kind = match(':') ? TokenKind::PlusColon : TokenKind::Plus;
        return tok;
      case '-':
        tok.kind = match(':') ? TokenKind::MinusColon : TokenKind::Minus;
        return tok;
      case '*':
        tok.kind = match('*') ? TokenKind::StarStar : TokenKind::Star;
        return tok;
      case '/': tok.kind = TokenKind::Slash; return tok;
      case '%': tok.kind = TokenKind::Percent; return tok;
      case '=':
        if (match('=')) {
            tok.kind = match('=') ? TokenKind::EqEqEq : TokenKind::EqEq;
        } else {
            tok.kind = TokenKind::Assign;
        }
        return tok;
      case '!':
        if (match('=')) {
            tok.kind = match('=') ? TokenKind::BangEqEq : TokenKind::BangEq;
        } else {
            tok.kind = TokenKind::Bang;
        }
        return tok;
      case '<':
        if (match('<')) {
            tok.kind = match('<') ? TokenKind::AShl : TokenKind::Shl;
        } else if (match('=')) {
            tok.kind = TokenKind::LtEq;
        } else {
            tok.kind = TokenKind::Lt;
        }
        return tok;
      case '>':
        if (match('>')) {
            tok.kind = match('>') ? TokenKind::AShr : TokenKind::Shr;
        } else if (match('=')) {
            tok.kind = TokenKind::GtEq;
        } else {
            tok.kind = TokenKind::Gt;
        }
        return tok;
      case '&':
        tok.kind = match('&') ? TokenKind::AmpAmp : TokenKind::Amp;
        return tok;
      case '|':
        tok.kind = match('|') ? TokenKind::PipePipe : TokenKind::Pipe;
        return tok;
      case '^':
        tok.kind = match('~') ? TokenKind::TildeCaret : TokenKind::Caret;
        return tok;
      case '~':
        if (match('&')) {
            tok.kind = TokenKind::TildeAmp;
        } else if (match('|')) {
            tok.kind = TokenKind::TildePipe;
        } else if (match('^')) {
            tok.kind = TokenKind::TildeCaret;
        } else {
            tok.kind = TokenKind::Tilde;
        }
        return tok;
      default:
        diags_->error(tok.loc,
                      std::string("unexpected character '") + c + "'");
        tok.kind = TokenKind::Error;
        return tok;
    }
}

Token
Lexer::lex_identifier()
{
    Token tok;
    tok.loc = here();
    std::string text;
    if (peek() == '\\') {
        // Escaped identifier: backslash up to whitespace.
        advance();
        while (!at_end() &&
               !std::isspace(static_cast<unsigned char>(peek()))) {
            text += advance();
        }
        tok.kind = TokenKind::Identifier;
        tok.text = std::move(text);
        return tok;
    }
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '_' || peek() == '$')) {
        text += advance();
    }
    const auto it = keyword_map().find(text);
    tok.kind = it != keyword_map().end() ? it->second : TokenKind::Identifier;
    tok.text = std::move(text);
    return tok;
}

Token
Lexer::lex_system_id()
{
    Token tok;
    tok.loc = here();
    std::string text;
    text += advance(); // '$'
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '_')) {
        text += advance();
    }
    tok.kind = TokenKind::SystemId;
    tok.text = std::move(text);
    return tok;
}

Token
Lexer::lex_string()
{
    Token tok;
    tok.loc = here();
    tok.kind = TokenKind::String;
    advance(); // opening quote
    std::string text;
    while (!at_end() && peek() != '"' && peek() != '\n') {
        char c = advance();
        if (c == '\\' && !at_end()) {
            const char esc = advance();
            switch (esc) {
              case 'n': c = '\n'; break;
              case 't': c = '\t'; break;
              case '\\': c = '\\'; break;
              case '"': c = '"'; break;
              default:
                diags_->warning(tok.loc,
                                std::string("unknown escape '\\") + esc +
                                    "'");
                c = esc;
                break;
            }
        }
        text += c;
    }
    if (at_end() || peek() != '"') {
        diags_->error(tok.loc, "unterminated string literal");
        tok.kind = TokenKind::Error;
        return tok;
    }
    advance(); // closing quote
    tok.text = std::move(text);
    return tok;
}

Token
Lexer::lex_number()
{
    Token tok;
    tok.loc = here();
    tok.kind = TokenKind::Number;

    // Optional leading size (decimal digits before a tick).
    std::string size_digits;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                         peek() == '_')) {
        const char c = advance();
        if (c != '_') {
            size_digits += c;
        }
    }

    // Peek past whitespace for a tick; "8 'h80" is legal Verilog.
    size_t save_pos = pos_;
    uint32_t save_line = line_, save_col = column_;
    skip_whitespace_and_comments();
    if (at_end() || peek() != '\'') {
        // Plain decimal literal: unsized, signed, 32 bits.
        pos_ = save_pos;
        line_ = save_line;
        column_ = save_col;
        if (size_digits.empty()) {
            diags_->error(tok.loc, "malformed number");
            tok.kind = TokenKind::Error;
            return tok;
        }
        auto v = BitVector::from_decimal(32, size_digits);
        CASCADE_CHECK(v.has_value());
        tok.value = *std::move(v);
        tok.sized = false;
        tok.is_signed = true;
        tok.text = size_digits;
        return tok;
    }
    advance(); // tick

    bool is_signed = false;
    if (!at_end() && (peek() == 's' || peek() == 'S')) {
        is_signed = true;
        advance();
    }
    if (at_end()) {
        diags_->error(tok.loc, "truncated based literal");
        tok.kind = TokenKind::Error;
        return tok;
    }
    char base = static_cast<char>(
        std::tolower(static_cast<unsigned char>(advance())));
    if (base != 'b' && base != 'o' && base != 'd' && base != 'h') {
        diags_->error(tok.loc, std::string("invalid number base '") + base +
                                   "'");
        tok.kind = TokenKind::Error;
        return tok;
    }

    skip_whitespace_and_comments();
    std::string digits;
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '_' || peek() == '?')) {
        digits += advance();
    }
    if (digits.empty()) {
        diags_->error(tok.loc, "based literal has no digits");
        tok.kind = TokenKind::Error;
        return tok;
    }

    uint32_t width = 32;
    bool sized = false;
    if (!size_digits.empty()) {
        const unsigned long parsed = std::stoul(size_digits);
        if (parsed == 0 || parsed > (1u << 20)) {
            diags_->error(tok.loc, "literal size out of range");
            tok.kind = TokenKind::Error;
            return tok;
        }
        width = static_cast<uint32_t>(parsed);
        sized = true;
    }

    decode_based(&tok, width, sized, base, digits);
    tok.is_signed = is_signed;
    tok.text = size_digits + "'" + (is_signed ? "s" : "") + base + digits;
    return tok;
}

void
Lexer::decode_based(Token* tok, uint32_t width, bool sized, char base,
                    const std::string& digits)
{
    tok->sized = sized;
    if (base == 'd') {
        std::string clean;
        for (char c : digits) {
            if (c == '_') {
                continue;
            }
            if (!std::isdigit(static_cast<unsigned char>(c))) {
                diags_->error(tok->loc, "invalid decimal digit");
                tok->kind = TokenKind::Error;
                return;
            }
            clean += c;
        }
        auto v = BitVector::from_decimal(width, clean);
        if (!v.has_value()) {
            diags_->error(tok->loc, "malformed decimal literal");
            tok->kind = TokenKind::Error;
            return;
        }
        tok->value = *std::move(v);
        return;
    }

    const uint32_t bpd = bits_per_digit(base);
    BitVector v(width, 0);
    uint32_t pos = 0;
    bool warned_xz = false;
    // Digits are MSB-first; walk from the right.
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        char c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(*it)));
        if (c == '_') {
            continue;
        }
        int dv;
        if (c == 'x' || c == 'z' || c == '?') {
            // Two-state build: x/z collapse to 0 (see DESIGN.md §5).
            if (!warned_xz) {
                diags_->warning(tok->loc,
                                "x/z digits are treated as 0 in this "
                                "two-state implementation");
                warned_xz = true;
            }
            dv = 0;
        } else {
            dv = digit_value(c);
            if (dv < 0 || dv >= (1 << bpd)) {
                diags_->error(tok->loc,
                              std::string("invalid digit '") + c +
                                  "' for base");
                tok->kind = TokenKind::Error;
                return;
            }
        }
        if (pos < width) {
            v.set_slice(pos, BitVector(bpd, static_cast<uint64_t>(dv)));
        }
        pos += bpd;
    }
    tok->value = std::move(v);
}

} // namespace cascade::verilog
