/// \file
/// Diagnostic collection and structured logging. User-facing errors (parse
/// errors, type errors, elaboration failures) are accumulated in
/// Diagnostics rather than thrown; the REPL reports them and discards the
/// offending input, per Cascade's model of rejecting ill-formed eval's
/// without disturbing the running program. Logger is the process-wide
/// leveled log sink that the runtime's formerly ad-hoc stderr messages
/// route through, gated by the CASCADE_LOG environment variable.

#ifndef CASCADE_COMMON_DIAGNOSTICS_H
#define CASCADE_COMMON_DIAGNOSTICS_H

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/source_loc.h"

namespace cascade {

/// Severity of a diagnostic message.
enum class Severity {
    Warning,
    Error,
};

/// A single diagnostic message with optional source location.
struct Diagnostic {
    Severity severity = Severity::Error;
    SourceLoc loc;
    std::string message;

    /// Renders "error: 3:14: message" style text.
    std::string str() const;
};

/// An ordered collection of diagnostics produced by one front-end pass.
class Diagnostics {
  public:
    void error(SourceLoc loc, std::string msg);
    void warning(SourceLoc loc, std::string msg);

    bool has_errors() const { return num_errors_ > 0; }
    size_t error_count() const { return num_errors_; }
    const std::vector<Diagnostic>& all() const { return diags_; }

    /// All diagnostics rendered one per line.
    std::string str() const;

    void clear();

  private:
    std::vector<Diagnostic> diags_;
    size_t num_errors_ = 0;
};

/// Log verbosity, most to least severe. Messages at or above the
/// configured level are emitted.
enum class LogLevel {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/// The level's lowercase name ("error", "warn", ...).
const char* log_level_name(LogLevel level);

/// Process-wide leveled log sink. Configuration comes from the
/// CASCADE_LOG environment variable, a comma-separated list of tokens:
/// a level (`off`, `error`, `warn`, `info`, `debug`) and optionally
/// `json` to emit one JSON object per line instead of plain text. The
/// default is `warn`. Examples:
///
///   CASCADE_LOG=debug        everything, plain text
///   CASCADE_LOG=info,json    info and above as JSON lines
///
/// Plain format: `cascade[warn] component: message`. JSON format:
/// `{"log":"cascade","level":"warn","component":"...","msg":"..."}`.
class Logger {
  public:
    static Logger& instance();

    /// True when a message at \p level would be emitted — callers should
    /// gate expensive message construction on this.
    bool enabled(LogLevel level) const { return level <= level_; }

    /// Emits unconditionally (callers gate on enabled()); thread-safe.
    void write(LogLevel level, const char* component,
               const std::string& message);

    void set_level(LogLevel level) { level_ = level; }
    LogLevel level() const { return level_; }
    void set_json(bool json) { json_ = json; }
    bool json() const { return json_; }
    /// Redirects output (default stderr) — test support.
    void set_stream(std::FILE* stream);

  private:
    Logger(); // parses CASCADE_LOG

    std::mutex mutex_;
    LogLevel level_ = LogLevel::Warn;
    bool json_ = false;
    std::FILE* stream_ = nullptr; // nullptr = stderr
};

/// Convenience: gate on the level, then emit. \p message_expr is only
/// evaluated when the level is enabled.
#define CASCADE_LOG_AT(level_, component_, message_expr_)                    \
    do {                                                                     \
        if (::cascade::Logger::instance().enabled(level_)) {                 \
            ::cascade::Logger::instance().write(level_, component_,          \
                                                (message_expr_));            \
        }                                                                    \
    } while (0)

} // namespace cascade

#endif // CASCADE_COMMON_DIAGNOSTICS_H
