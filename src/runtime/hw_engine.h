/// \file
/// Hardware engines (paper §5.2): a subprogram compiled through the Fig. 10
/// wrapper and lowered onto the FPGA fabric, driven by a software stub that
/// speaks the AXI-style MMIO protocol. Supports get/set_state over MMIO,
/// task readback ($display from hardware), and open-loop scheduling.
///
/// Time model: each fabric cycle costs one device clock period and each
/// bus transaction costs the modeled MMIO latency; the runtime folds these
/// into the virtual timeline (see DESIGN.md §1).

#ifndef CASCADE_RUNTIME_HW_ENGINE_H
#define CASCADE_RUNTIME_HW_ENGINE_H

#include <memory>
#include <unordered_map>

#include "fpga/fabric_exec.h"
#include "ir/hw_wrapper.h"
#include "runtime/engine.h"

namespace cascade::runtime {

class HwEngine : public Engine {
  public:
    /// \p port_names: the subprogram's port order (each must be a VarSlot
    /// in \p map). \p clock_mhz / \p mmio_latency_s define the time model.
    /// The fabric may be a levelized-netlist interpreter (Bitstream) or a
    /// native-code JIT kernel — the stub drives either via FabricExec.
    HwEngine(std::unique_ptr<fpga::FabricExec> fabric, ir::WrapperMap map,
             std::vector<std::string> port_names,
             std::vector<bool> port_is_input, EngineCallbacks* callbacks,
             double clock_mhz, double mmio_latency_s);

    sim::StateSnapshot get_state() override;
    void set_state(const sim::StateSnapshot& snapshot) override;
    void read(const Event& event) override;
    std::vector<Event> write() override;
    bool there_are_evals() override;
    void evaluate() override;
    bool there_are_updates() override;
    void update() override;
    bool finished() const override { return finished_; }
    bool is_hardware() const override { return true; }

    /// Clears task bits latched by adoption-time MMIO traffic without
    /// servicing them. The state snapshot installed by set_state is the
    /// source of truth; a task that fired against pre-restore register
    /// values would replay a side effect the software engine already
    /// delivered (or invent one that never happened).
    void discard_pending_tasks();

    uint64_t open_loop(uint64_t max_iterations) override;
    bool
    supports_open_loop() const override
    {
        return !map_.clock_input.empty();
    }

    /// One MMIO slot read — the honest cost of `:peek` against hardware.
    std::optional<BitVector> peek(const std::string& name) override
    {
        const ir::VarSlot* slot = map_.find(name);
        if (slot == nullptr || slot->elems != 0) {
            return std::nullopt;
        }
        return read_var(*slot);
    }

    double take_modeled_seconds() override;

    /// @{ Raw slot access for the runtime's peripheral drivers (hardware
    /// FIFO feeding during open loop, state sync).
    BitVector read_var(const ir::VarSlot& slot, uint64_t element = 0);
    void write_var(const ir::VarSlot& slot, const BitVector& value,
                   uint64_t element = 0);
    const ir::WrapperMap& map() const { return map_; }
    /// @}

    uint64_t mmio_transactions() const { return transactions_; }
    uint64_t fabric_cycles() const { return fabric_->cycles(); }

    /// @{ Debugger instrumentation: forwards to the programmed fabric's
    /// trigger cells and pre-trigger capture ring (see Bitstream). While a
    /// trigger is pending, open_loop stops early: the remaining grant is
    /// cancelled (reading the completed count first — the cancel write
    /// resets it) so the runtime can halt and evict at the firing cycle.
    bool debug_armed() const { return fabric_->debug_armed(); }
    uint64_t debug_fired() const { return fabric_->debug_fired(); }
    uint64_t debug_fire_cycle() const
    {
        return fabric_->debug_fire_cycle();
    }
    const std::vector<fpga::FabricExec::DebugProbe>& debug_probes() const
    {
        return fabric_->debug_probes();
    }
    const std::deque<fpga::FabricExec::DebugSample>& debug_ring() const
    {
        return fabric_->debug_ring();
    }
    /// @}

    /// @{ Source-level activity profiling: forwards to the programmed
    /// fabric's per-node eval/toggle counters (provenance-labeled).
    void set_profiling(bool on) { fabric_->set_profiling(on); }
    bool profiling() const { return fabric_->profiling(); }
    std::map<std::string, fpga::FabricExec::SourceActivity>
    fabric_activity() const
    {
        return fabric_->activity_by_source();
    }
    /// @}

  private:
    uint32_t mmio_read(uint32_t addr);
    void mmio_write(uint32_t addr, uint32_t value);
    /// Services pending task sites; returns true if any fired.
    bool service_tasks();

    std::unique_ptr<fpga::FabricExec> fabric_;
    ir::WrapperMap map_;
    std::vector<const ir::VarSlot*> port_slots_;
    std::vector<bool> port_is_input_;
    std::vector<BitVector> output_cache_;
    EngineCallbacks* callbacks_;
    double clock_period_s_;
    double mmio_latency_s_;

    // Cached fabric input indices for the AXI pins.
    int in_clk_, in_rw_, in_addr_, in_in_;
    int out_out_, out_wait_;

    bool input_dirty_ = true;
    bool task_pending_ = false;
    bool finished_ = false;
    uint64_t transactions_ = 0;
    uint64_t transactions_reported_ = 0;
    uint64_t cycles_accum_ = 0;
};

} // namespace cascade::runtime

#endif // CASCADE_RUNTIME_HW_ENGINE_H
