#include "runtime/hw_engine.h"

#include "common/check.h"
#include "sim/format.h"
#include "telemetry/telemetry.h"

namespace cascade::runtime {

namespace {

/// Hardware task readbacks ($display/$finish fired from the fabric) are
/// rare enough to record process-wide.
telemetry::Counter*
tasks_serviced_counter()
{
    static telemetry::Counter* const c =
        telemetry::Registry::global().counter("hw.tasks_serviced");
    return c;
}

} // namespace

HwEngine::HwEngine(std::unique_ptr<fpga::FabricExec> fabric,
                   ir::WrapperMap map, std::vector<std::string> port_names,
                   std::vector<bool> port_is_input,
                   EngineCallbacks* callbacks, double clock_mhz,
                   double mmio_latency_s)
    : fabric_(std::move(fabric)), map_(std::move(map)),
      port_is_input_(std::move(port_is_input)), callbacks_(callbacks),
      clock_period_s_(1.0 / (clock_mhz * 1e6)),
      mmio_latency_s_(mmio_latency_s)
{
    for (const std::string& name : port_names) {
        const ir::VarSlot* slot = map_.find(name);
        CASCADE_CHECK(slot != nullptr);
        port_slots_.push_back(slot);
        output_cache_.emplace_back(slot->width, 0);
    }
    in_clk_ = fabric_->input_index("CLK");
    in_rw_ = fabric_->input_index("RW");
    in_addr_ = fabric_->input_index("ADDR");
    in_in_ = fabric_->input_index("IN");
    out_out_ = fabric_->output_index("OUT");
    out_wait_ = fabric_->output_index("WAIT");
    CASCADE_CHECK(in_clk_ >= 0 && in_rw_ >= 0 && in_addr_ >= 0 &&
                  in_in_ >= 0 && out_out_ >= 0 && out_wait_ >= 0);
    fabric_->set_input(in_rw_, BitVector(1, 0));
    fabric_->eval_comb();
}

uint32_t
HwEngine::mmio_read(uint32_t addr)
{
    ++transactions_;
    fabric_->set_input(in_rw_, BitVector(1, 0));
    fabric_->set_input(in_addr_, BitVector(32, addr));
    fabric_->eval_comb();
    return static_cast<uint32_t>(fabric_->output(out_out_).to_uint64());
}

void
HwEngine::mmio_write(uint32_t addr, uint32_t value)
{
    ++transactions_;
    fabric_->set_input(in_rw_, BitVector(1, 1));
    fabric_->set_input(in_addr_, BitVector(32, addr));
    fabric_->set_input(in_in_, BitVector(32, value));
    fabric_->set_input(in_clk_, BitVector(1, 1));
    fabric_->step();
    fabric_->set_input(in_clk_, BitVector(1, 0));
    fabric_->step();
    fabric_->set_input(in_rw_, BitVector(1, 0));
    cycles_accum_ += 2;
}

BitVector
HwEngine::read_var(const ir::VarSlot& slot, uint64_t element)
{
    BitVector v(slot.width, 0);
    const uint32_t base =
        slot.base + static_cast<uint32_t>(element) * slot.words;
    for (uint32_t j = 0; j < slot.words; ++j) {
        v.set_slice(j * 32, BitVector(32, mmio_read(base + j)));
    }
    return v;
}

void
HwEngine::write_var(const ir::VarSlot& slot, const BitVector& value,
                    uint64_t element)
{
    const uint32_t base =
        slot.base + static_cast<uint32_t>(element) * slot.words;
    for (uint32_t j = 0; j < slot.words; ++j) {
        mmio_write(base + j,
                   static_cast<uint32_t>(
                       value.slice(j * 32, 32).to_uint64()));
    }
}

sim::StateSnapshot
HwEngine::get_state()
{
    sim::StateSnapshot snap;
    for (const ir::VarSlot& slot : map_.vars) {
        if (!slot.writable || slot.name[0] == '_') {
            continue;
        }
        if (slot.elems > 0) {
            std::vector<BitVector> contents;
            contents.reserve(slot.elems);
            for (uint32_t i = 0; i < slot.elems; ++i) {
                contents.push_back(read_var(slot, i));
            }
            snap.memories[slot.name] = std::move(contents);
        } else {
            snap.regs[slot.name] = read_var(slot);
        }
    }
    return snap;
}

void
HwEngine::set_state(const sim::StateSnapshot& snapshot)
{
    for (const auto& [name, value] : snapshot.regs) {
        const ir::VarSlot* slot = map_.find(name);
        if (slot != nullptr && slot->writable) {
            write_var(*slot, value);
        }
    }
    for (const auto& [name, contents] : snapshot.memories) {
        const ir::VarSlot* slot = map_.find(name);
        if (slot == nullptr || !slot->writable) {
            continue;
        }
        for (size_t i = 0; i < contents.size() && i < slot->elems; ++i) {
            write_var(*slot, contents[i], i);
        }
    }
    input_dirty_ = true;
}

void
HwEngine::read(const Event& event)
{
    const ir::VarSlot* slot = port_slots_[event.port];
    if (!slot->writable) {
        return; // output port: nothing to drive
    }
    write_var(*slot, event.value);
    input_dirty_ = true;
}

std::vector<Event>
HwEngine::write()
{
    std::vector<Event> events;
    for (size_t p = 0; p < port_slots_.size(); ++p) {
        if (port_is_input_[p]) {
            continue;
        }
        BitVector v = read_var(*port_slots_[p]);
        if (v != output_cache_[p]) {
            output_cache_[p] = v;
            events.push_back({static_cast<uint32_t>(p), std::move(v)});
        }
    }
    return events;
}

bool
HwEngine::there_are_evals()
{
    return input_dirty_ || task_pending_;
}

void
HwEngine::evaluate()
{
    // Combinational logic settles as part of every transaction; evaluate
    // only needs to surface pending system tasks.
    input_dirty_ = false;
    service_tasks();
}

bool
HwEngine::service_tasks()
{
    if (map_.tasks.empty()) {
        task_pending_ = false;
        return false;
    }
    const uint32_t pending = mmio_read(map_.ctrl.tasks);
    if (pending == 0) {
        task_pending_ = false;
        return false;
    }
    for (size_t k = 0; k < map_.tasks.size(); ++k) {
        if ((pending & (1u << k)) == 0) {
            continue;
        }
        const ir::TaskSite& site = map_.tasks[k];
        switch (site.kind) {
          case ir::TaskKind::Finish:
            finished_ = true;
            if (callbacks_ != nullptr) {
                callbacks_->on_finish();
            }
            break;
          case ir::TaskKind::Display:
          case ir::TaskKind::Write:
          case ir::TaskKind::Monitor: {
            std::vector<sim::DisplayValue> values;
            for (uint32_t slot_index : site.arg_slots) {
                const ir::VarSlot& slot = map_.vars[slot_index];
                sim::DisplayValue dv;
                dv.value = read_var(slot);
                dv.is_signed = slot.is_signed;
                values.push_back(std::move(dv));
            }
            const std::string text =
                site.has_format ? sim::format_display(site.format, values)
                                : sim::format_values(values);
            if (callbacks_ != nullptr) {
                if (site.kind == ir::TaskKind::Write) {
                    callbacks_->on_write(text);
                } else if (site.kind == ir::TaskKind::Monitor) {
                    // The fabric already gated this readback on an
                    // argument change (or first fire after handoff); the
                    // runtime's text compare does the final suppression so
                    // sw and hw engines print identical monitor lines.
                    callbacks_->on_monitor(site.key, text);
                } else {
                    callbacks_->on_display(text);
                }
            }
            break;
          }
        }
    }
    mmio_write(map_.ctrl.clear, 1);
    task_pending_ = false;
    tasks_serviced_counter()->inc();
    return true;
}

void
HwEngine::discard_pending_tasks()
{
    if (!map_.tasks.empty() && mmio_read(map_.ctrl.tasks) != 0) {
        mmio_write(map_.ctrl.clear, 1);
    }
    task_pending_ = false;
}

bool
HwEngine::there_are_updates()
{
    return mmio_read(map_.ctrl.updates) != 0;
}

void
HwEngine::update()
{
    mmio_write(map_.ctrl.latch, 1);
    // A committed update can trigger system tasks on the next evaluation.
    task_pending_ = !map_.tasks.empty();
    input_dirty_ = true;
}

uint64_t
HwEngine::open_loop(uint64_t max_iterations)
{
    if (!supports_open_loop() || max_iterations == 0) {
        return 0;
    }
    mmio_write(map_.ctrl.oloop,
               static_cast<uint32_t>(
                   std::min<uint64_t>(max_iterations, 0x7fffffff)));
    // The fabric free-runs until the budget is exhausted or a task fires.
    // One open-loop iteration (clock toggle) happens per CLK rising edge,
    // i.e. one per two fabric cycles here.
    const uint64_t cycle_limit = 2 * max_iterations + 64;
    uint64_t cycles = 0;
    bool debug_stop = false;
    fabric_->set_input(in_rw_, BitVector(1, 0));
    while (cycles < cycle_limit) {
        fabric_->set_input(in_clk_, BitVector(1, 1));
        fabric_->step();
        fabric_->set_input(in_clk_, BitVector(1, 0));
        fabric_->step();
        cycles += 2;
        if (fabric_->output(out_wait_).is_zero()) {
            break;
        }
        if (fabric_->debug_fired() != 0) {
            debug_stop = true;
            break;
        }
    }
    cycles_accum_ += cycles;
    const uint32_t itrs = mmio_read(map_.ctrl.itrs);
    if (debug_stop) {
        // A synthesized trigger fired mid-batch: cancel the rest of the
        // grant so the runtime can halt at the firing cycle. The cancel
        // write resets the iteration counter (read above, first), and the
        // wrapper gates _otick/_latch on the write cycle so cancelling
        // neither ticks the design clock nor auto-latches.
        mmio_write(map_.ctrl.oloop, 0);
    }
    if (service_tasks()) {
        task_pending_ = false;
    }
    // Output caches are stale after free-running.
    input_dirty_ = true;
    return itrs;
}

double
HwEngine::take_modeled_seconds()
{
    double out = static_cast<double>(cycles_accum_) * clock_period_s_;
    cycles_accum_ = 0;
    out += static_cast<double>(transactions_ - transactions_reported_) *
           mmio_latency_s_;
    transactions_reported_ = transactions_;
    return out;
}

} // namespace cascade::runtime
