/// \file
/// Disarmed-debugger overhead headline: the acceptance criterion for the
/// interactive debugger is that a runtime with no points armed steps at
/// the same rate as one that has never heard of the debugger. Three
/// configurations over the same software-resident counter:
///
///   disarmed  -- no debug points (the guarded fast path: one relaxed
///                atomic load per inter-timestep window);
///   armed     -- one breakpoint whose condition never fires (prices the
///                per-window condition sweep + mirror-ring sampling);
///   watch     -- one value-change watchpoint on a quiet signal.
///
/// Writes BENCH_debugger_overhead.json (schema cascade.bench.v1) with
/// ticks/s per configuration; check_bench_regression.py compares the
/// *_ticks_per_s leaves against the committed baseline.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "runtime/runtime.h"

using cascade::runtime::Runtime;

namespace {

constexpr uint64_t kWarmupTicks = 2000;
constexpr uint64_t kTimedTicks = 100000;

enum class Config { Disarmed, ArmedBreak, ArmedWatch };

double
ticks_per_second(Config config)
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    Runtime rt(opts);
    rt.on_output = [](const std::string&) {};
    std::string errors;
    // `quiet` never changes, so the watchpoint never fires; the break
    // condition is unreachable within the timed window.
    if (!rt.eval("reg [31:0] cnt = 0; reg quiet = 0; "
                 "always @(posedge clk.val) cnt <= cnt + 1;",
                 &errors)) {
        std::fprintf(stderr, "eval failed: %s\n", errors.c_str());
        return -1;
    }
    if (config == Config::ArmedBreak) {
        rt.debug_break("cnt", "==", "4000000000", &errors);
    } else if (config == Config::ArmedWatch) {
        rt.debug_watch("quiet", &errors);
    }
    rt.run_for_ticks(kWarmupTicks);
    const auto t0 = std::chrono::steady_clock::now();
    rt.run_for_ticks(kTimedTicks);
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    return elapsed > 0 ? static_cast<double>(kTimedTicks) / elapsed : 0;
}

} // namespace

int
main()
{
    std::printf("%-10s %16s\n", "config", "ticks/s");
    const double disarmed = ticks_per_second(Config::Disarmed);
    std::printf("%-10s %16.0f\n", "disarmed", disarmed);
    const double armed = ticks_per_second(Config::ArmedBreak);
    std::printf("%-10s %16.0f\n", "break", armed);
    const double watch = ticks_per_second(Config::ArmedWatch);
    std::printf("%-10s %16.0f\n", "watch", watch);
    if (disarmed <= 0 || armed <= 0 || watch <= 0) {
        return 1;
    }
    std::printf("\narmed/disarmed ratio: %.3f (break), %.3f (watch)\n",
                disarmed / armed, disarmed / watch);

    std::ofstream out("BENCH_debugger_overhead.json");
    char body[256];
    std::snprintf(body, sizeof body,
                  "{\"disarmed_ticks_per_s\":%.0f,"
                  "\"armed_break_ticks_per_s\":%.0f,"
                  "\"armed_watch_ticks_per_s\":%.0f}",
                  disarmed, armed, watch);
    out << "{\"schema\":\"cascade.bench.v1\","
        << "\"bench\":\"debugger_overhead\",\"configs\":" << body
        << "}\n";
    std::fprintf(stderr, "# results -> BENCH_debugger_overhead.json\n");
    return 0;
}
