/// \file
/// Table 6 (request tracing, beyond the paper): end-to-end edit ->
/// hardware latency measured by the causal request tracker, for three
/// request classes:
///
///   - cold: a fresh runtime per iteration, each compile a distinct
///     placement seed, so every request takes the full synthesize /
///     techmap / place / adopt path;
///   - warm: fresh runtimes sharing ONE pooled CompileService with a
///     pinned seed, so every compile after the first is a
///     content-addressed bitstream cache hit;
///   - shared: a 4-tenant fleet on one fabric through the hypervisor,
///     each tenant's first compile admitted onto a device slice.
///
/// Each sample is a finished "compile" request from the runtime's own
/// tracker -- the submit-to-first-hardware-tick wall time the REPL's
/// `:why` decomposes -- so the bench measures exactly what the
/// observability surface reports, and asserts the tracker's invariant
/// (segments sum to end-to-end latency within 1%) on every sample.
///
/// Output: BENCH_table6_request_latency.json with p50/p99 per class and
/// the mean cold-path segment breakdown (queue, cache, synth, techmap,
/// place, timing, admission, adoption).

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "hypervisor/fabric_manager.h"
#include "runtime/runtime.h"
#include "service/compile_service.h"
#include "telemetry/request_trace.h"

using cascade::hypervisor::FabricManager;
using cascade::runtime::Runtime;
using cascade::service::CompileService;
using cascade::telemetry::RequestRecord;

namespace {

constexpr int kColdRuns = 8;
constexpr int kWarmRuns = 16;
constexpr int kSharedTenants = 4;

Runtime::Options
bench_options(uint64_t seed)
{
    Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;
    opts.open_loop_target_wall_s = 0.02;
    opts.compile_seed = seed;
    return opts;
}

const char* const kProgram = "reg [15:0] n = 0;\n"
                             "wire [15:0] h;\n"
                             "assign h = (n * 16'h9E37) ^ (n >> 3);\n"
                             "always @(posedge clk.val) n <= n + 1;\n";

/// Runs \p rt until its adopted compile request retires (the request
/// closes at the first post-adoption hardware tick) and returns it.
/// Exits the process on timeout or a failed compile.
RequestRecord
measure_compile_request(Runtime& rt, const char* what)
{
    std::string errors;
    if (!rt.eval(kProgram, &errors)) {
        std::fprintf(stderr, "%s: eval failed: %s\n", what,
                     errors.c_str());
        std::exit(1);
    }
    if (!rt.wait_for_hardware(120)) {
        std::fprintf(stderr, "%s: never reached hardware\n", what);
        std::exit(1);
    }
    const auto t0 = std::chrono::steady_clock::now();
    while (true) {
        rt.step();
        for (const RequestRecord& r : rt.request_tracker().recent()) {
            if (std::string(r.kind) == "compile" && r.done && r.ok) {
                return r;
            }
        }
        if (std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count() > 60) {
            std::fprintf(stderr, "%s: compile request never retired\n",
                         what);
            std::exit(1);
        }
    }
}

/// The tracker's contract, asserted on every sample the bench reports.
void
check_partition(const RequestRecord& r, const char* what)
{
    const double total = r.total_us();
    if (total <= 0 ||
        std::fabs(r.segment_sum_us() - total) > 0.01 * total) {
        std::fprintf(stderr,
                     "%s: request %llu segments sum %.3fus != "
                     "end-to-end %.3fus\n",
                     what, static_cast<unsigned long long>(r.id),
                     r.segment_sum_us(), total);
        std::exit(1);
    }
}

double
percentile(std::vector<double> v, double p)
{
    std::sort(v.begin(), v.end());
    const size_t at = static_cast<size_t>(p * (v.size() - 1) + 0.5);
    return v[std::min(at, v.size() - 1)];
}

std::string
class_json(const char* name, const std::vector<double>& seconds)
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "\"%s\":{\"samples\":%zu,\"p50_s\":%.6f,"
                  "\"p99_s\":%.6f}",
                  name, seconds.size(), percentile(seconds, 0.5),
                  percentile(seconds, 0.99));
    return buf;
}

} // namespace

int
main()
{
    std::printf("Table 6: edit->hardware request latency "
                "(cold / warm / shared)\n");

    // -- Cold: fresh runtime, fresh seed, full compile path. ------------
    std::vector<double> cold_s;
    std::map<std::string, double> cold_segment_us;
    for (int i = 0; i < kColdRuns; ++i) {
        Runtime rt(bench_options(100 + i));
        rt.on_output = [](const std::string&) {};
        const RequestRecord r = measure_compile_request(rt, "cold");
        check_partition(r, "cold");
        if (r.cache_hit) {
            std::fprintf(stderr, "cold run %d unexpectedly hit cache\n",
                         i);
            return 1;
        }
        cold_s.push_back(r.total_us() * 1e-6);
        for (const auto& s : r.segments) {
            cold_segment_us[s.name] += s.dur_us;
        }
    }

    // -- Warm: one pooled service, pinned seed -> cache hits. -----------
    std::vector<double> warm_s;
    {
        CompileService::Config cfg;
        cfg.workers = 1;
        CompileService service(cfg);
        for (int i = 0; i < kWarmRuns + 1; ++i) {
            FabricManager fabric;
            Runtime rt(bench_options(7), service, fabric);
            rt.on_output = [](const std::string&) {};
            const RequestRecord r = measure_compile_request(rt, "warm");
            check_partition(r, "warm");
            if (i == 0) {
                continue; // the priming miss populates the cache
            }
            if (!r.cache_hit) {
                std::fprintf(stderr, "warm run %d missed the cache\n",
                             i);
                return 1;
            }
            warm_s.push_back(r.total_us() * 1e-6);
        }
    }

    // -- Shared: a tenant fleet through the hypervisor. -----------------
    std::vector<double> shared_s(kSharedTenants, 0);
    {
        CompileService::Config cfg;
        CompileService service(cfg);
        FabricManager fabric;
        std::barrier start(kSharedTenants);
        std::vector<std::thread> threads;
        threads.reserve(kSharedTenants);
        for (int i = 0; i < kSharedTenants; ++i) {
            threads.emplace_back([&, i] {
                Runtime::Options opts = bench_options(200 + i);
                opts.tenant_name = "bench-t" + std::to_string(i);
                Runtime rt(opts, service, fabric);
                rt.on_output = [](const std::string&) {};
                start.arrive_and_wait();
                const RequestRecord r =
                    measure_compile_request(rt, "shared");
                check_partition(r, "shared");
                shared_s[i] = r.total_us() * 1e-6;
            });
        }
        for (std::thread& t : threads) {
            t.join();
        }
    }

    std::printf("cold   p50 %.4fs  p99 %.4fs  (%d runs)\n",
                percentile(cold_s, 0.5), percentile(cold_s, 0.99),
                kColdRuns);
    std::printf("warm   p50 %.4fs  p99 %.4fs  (%d runs, cache hits)\n",
                percentile(warm_s, 0.5), percentile(warm_s, 0.99),
                kWarmRuns);
    std::printf("shared p50 %.4fs  p99 %.4fs  (%d tenants)\n",
                percentile(shared_s, 0.5), percentile(shared_s, 0.99),
                kSharedTenants);

    std::string segments_json;
    for (const auto& [name, us] : cold_segment_us) {
        char row[96];
        std::snprintf(row, sizeof row, "\"%s_seconds\":%.6f",
                      name.c_str(), us * 1e-6 / kColdRuns);
        if (!segments_json.empty()) {
            segments_json += ',';
        }
        segments_json += row;
        std::printf("  cold mean %-10s %.4fs\n", name.c_str(),
                    us * 1e-6 / kColdRuns);
    }

    std::ofstream out("BENCH_table6_request_latency.json");
    out << "{\"schema\":\"cascade.bench.v1\","
        << "\"bench\":\"table6_request_latency\","
        << class_json("cold", cold_s) << ','
        << class_json("warm", warm_s) << ','
        << class_json("shared", shared_s)
        << ",\"cold_segments_mean\":{" << segments_json << "}}\n";
    std::fprintf(stderr,
                 "# results -> BENCH_table6_request_latency.json\n");
    return 0;
}
