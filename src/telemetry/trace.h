/// \file
/// The tracing half of the observability subsystem: phase-scoped RAII
/// spans (TELEM_SPAN("synth")) recorded into a bounded ring buffer, plus
/// instant events for point-in-time markers (engine transitions). The
/// buffer exports Chrome trace_event-format JSON, loadable in
/// chrome://tracing and Perfetto.
///
/// Span names must have static storage duration (string literals); the
/// ring stores the pointer, not a copy. Nesting depth is tracked per
/// thread, so spans opened on the compile-server thread interleave
/// correctly with runtime-thread spans (distinguished by tid).

#ifndef CASCADE_TELEMETRY_TRACE_H
#define CASCADE_TELEMETRY_TRACE_H

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace cascade::telemetry {

struct TraceEvent {
    const char* name = "";
    double ts_us = 0;  ///< start, microseconds since the tracer's epoch
    double dur_us = 0; ///< 0 and instant=true for point events
    uint32_t tid = 0;
    uint32_t depth = 0;
    bool instant = false;
    bool has_arg = false;
    uint64_t arg = 0;    ///< emitted as args.value
    uint64_t tenant = 0; ///< swimlane: exported as pid 1 + tenant
    /// Flow binding (Chrome trace_event "s"/"t"/"f" phases): 0 for
    /// ordinary events, else the phase character. Flow events with the
    /// same flow_id render as arrows linking the slices that enclose
    /// them, across threads and tenant lanes.
    char flow_phase = 0;
    uint64_t flow_id = 0;
};

class Tracer {
  public:
    explicit Tracer(size_t capacity = 1u << 14);

    /// The process-wide tracer every TELEM_SPAN records into.
    static Tracer& global();

    /// Microseconds since this tracer was constructed.
    double now_us() const;

    /// Records a completed span with caller-supplied timestamps (the
    /// SpanGuard path; also used directly by tests for determinism).
    /// Every event lands on the calling thread's tenant lane (see
    /// telemetry::set_thread_tenant); the arg overload additionally
    /// tags args.value (the blocked-on holder, a version number, ...).
    void record_complete(const char* name, double ts_us, double dur_us,
                         uint32_t depth);
    void record_complete(const char* name, double ts_us, double dur_us,
                         uint32_t depth, uint64_t arg);
    /// Records a span on an explicit tenant's lane regardless of the
    /// calling thread (compile workers acting on a tenant's behalf).
    void record_complete_tenant(const char* name, double ts_us,
                                double dur_us, uint64_t tenant);
    /// Records a point event, optionally tagged with a numeric argument
    /// (e.g. the adopted program version).
    void instant(const char* name);
    void instant(const char* name, uint64_t arg);
    /// Point event pinned to an explicit tenant's lane.
    void instant_tenant(const char* name, uint64_t tenant, uint64_t arg);

    /// @{ Flow events (request tracing): a flow is a causal arrow chain
    /// through the slices it binds to. \p phase is 's' (start), 't'
    /// (step), or 'f' (finish); events sharing \p id form one chain.
    /// The plain overload stamps the current time on the calling
    /// thread's tenant lane; the _tenant overload pins lane and
    /// timestamp explicitly (compile workers binding a flow step into a
    /// span they recorded retroactively).
    void flow(const char* name, char phase, uint64_t id);
    void flow_tenant(const char* name, char phase, uint64_t id,
                     uint64_t tenant, double ts_us);
    /// @}

    /// Oldest-first copy of the buffered events.
    std::vector<TraceEvent> events() const;
    size_t dropped() const; ///< events overwritten by ring wraparound

    /// The buffer as Chrome trace_event JSON:
    /// {"displayTimeUnit":"ms","traceEvents":[...]}.
    std::string chrome_json() const;
    /// Writes chrome_json() to \p path; returns false on IO failure.
    bool write_chrome_json(const std::string& path) const;

    void clear();

    /// Stable small id for the calling thread (1-based).
    static uint32_t thread_id();

  private:
    void push(TraceEvent event);

    mutable std::mutex mutex_;
    std::vector<TraceEvent> ring_;
    size_t next_ = 0;
    size_t count_ = 0;
    size_t dropped_ = 0;
    const std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: records begin on construction, a complete ("ph":"X") event
/// on destruction. Optionally mirrors the duration (nanoseconds) into a
/// histogram so phase timings show up in :stats too.
class SpanGuard {
  public:
    SpanGuard(Tracer& tracer, const char* name,
              Histogram* duration_ns = nullptr);
    ~SpanGuard();

    SpanGuard(const SpanGuard&) = delete;
    SpanGuard& operator=(const SpanGuard&) = delete;

  private:
    Tracer& tracer_;
    const char* name_;
    Histogram* duration_ns_;
    double start_us_;
    uint32_t depth_;
};

} // namespace cascade::telemetry

#define CASCADE_TELEM_CONCAT2(a, b) a##b
#define CASCADE_TELEM_CONCAT(a, b) CASCADE_TELEM_CONCAT2(a, b)

/// Phase span on the global tracer: TELEM_SPAN("synth");
#define TELEM_SPAN(name)                                                     \
    ::cascade::telemetry::SpanGuard CASCADE_TELEM_CONCAT(                    \
        telem_span_, __LINE__)(::cascade::telemetry::Tracer::global(), name)

/// Phase span that also records its duration into a histogram.
#define TELEM_SPAN_HIST(name, hist)                                          \
    ::cascade::telemetry::SpanGuard CASCADE_TELEM_CONCAT(                    \
        telem_span_, __LINE__)(::cascade::telemetry::Tracer::global(),       \
                               name, hist)

#endif // CASCADE_TELEMETRY_TRACE_H
