/// \file
/// Tests for the toolchain back half: technology mapping, placement,
/// timing analysis, and the compile driver — including the properties the
/// paper's evaluation leans on (compile time grows with design size; the
/// Fig. 10 wrapper costs area; timing can fail).

#include "fpga/compile.h"

#include <gtest/gtest.h>

#include "ir/hw_wrapper.h"
#include "verilog/parser.h"

namespace cascade::fpga {
namespace {

using namespace verilog;

std::shared_ptr<const ElaboratedModule>
elaborate_src(std::string_view src)
{
    Diagnostics diags;
    SourceUnit unit = parse(src, &diags);
    EXPECT_FALSE(diags.has_errors()) << diags.str();
    Elaborator elab(&diags);
    auto em = elab.elaborate(*unit.modules[0]);
    EXPECT_NE(em, nullptr) << diags.str();
    return std::shared_ptr<const ElaboratedModule>(std::move(em));
}

/// An N-stage 32-bit pipeline: area and compile time scale with N.
std::string
pipeline_src(int stages)
{
    std::string body;
    body += "module P(input wire clk, input wire [31:0] din, "
            "output wire [31:0] dout);\n";
    for (int i = 0; i < stages; ++i) {
        body += "  reg [31:0] s" + std::to_string(i) + " = 0;\n";
    }
    body += "  always @(posedge clk) begin\n";
    body += "    s0 <= din * 3 + 1;\n";
    for (int i = 1; i < stages; ++i) {
        body += "    s" + std::to_string(i) + " <= s" +
                std::to_string(i - 1) + " ^ (s" + std::to_string(i - 1) +
                " >> 3);\n";
    }
    body += "  end\n";
    body += "  assign dout = s" + std::to_string(stages - 1) + ";\n";
    body += "endmodule\n";
    return body;
}

TEST(TechMap, CostsAreMonotoneInWidth)
{
    Node add8{Op::Add, 8, 0, {}, BitVector()};
    Node add32{Op::Add, 32, 0, {}, BitVector()};
    EXPECT_LT(le_cost(add8), le_cost(add32));
    Node mul16{Op::Mul, 16, 0, {}, BitVector()};
    EXPECT_GT(le_cost(mul16), le_cost(add32));
    Node wire{Op::Slice, 32, 0, {}, BitVector()};
    EXPECT_EQ(le_cost(wire), 0u);
    EXPECT_GT(node_delay_ns(mul16), node_delay_ns(add8));
}

TEST(TechMap, AreaAccountsRegistersAndMemories)
{
    auto em = elaborate_src(R"(
        module M(input wire clk, input wire [7:0] d,
                 output wire [7:0] q);
          reg [7:0] r = 0;
          reg [7:0] mem [0:63];
          always @(posedge clk) begin
            r <= d + 1;
            mem[d[5:0]] <= d;
          end
          assign q = mem[r[5:0]] ^ r;
        endmodule
    )");
    Diagnostics diags;
    auto nl = synthesize(*em, &diags);
    ASSERT_NE(nl, nullptr) << diags.str();
    MappedDesign mapped = technology_map(*nl);
    EXPECT_GE(mapped.area.ffs, 8u);
    EXPECT_EQ(mapped.area.bram_bits, 64u * 8u);
    EXPECT_GT(mapped.cells.size(), 0u);
    EXPECT_FALSE(mapped.edges.empty());
}

TEST(Place, ImprovesWirelength)
{
    auto em = elaborate_src(pipeline_src(24));
    Diagnostics diags;
    auto nl = synthesize(*em, &diags);
    ASSERT_NE(nl, nullptr) << diags.str();
    MappedDesign mapped = technology_map(*nl);
    PlaceOptions opts;
    opts.effort = 0.3;
    PlacementResult r = place(mapped, opts);
    EXPECT_LE(r.final_wirelength, r.initial_wirelength);
    EXPECT_GT(r.moves_evaluated, 0u);
    // All locations within the grid, no two cells on one slot.
    std::set<std::pair<uint32_t, uint32_t>> seen;
    for (const auto& loc : r.locations) {
        EXPECT_LT(loc.first, r.grid);
        EXPECT_LT(loc.second, r.grid);
        EXPECT_TRUE(seen.insert(loc).second);
    }
}

TEST(Place, DeterministicForSeed)
{
    auto em = elaborate_src(pipeline_src(8));
    Diagnostics diags;
    auto nl = synthesize(*em, &diags);
    ASSERT_NE(nl, nullptr);
    MappedDesign mapped = technology_map(*nl);
    PlaceOptions opts;
    opts.effort = 0.2;
    opts.seed = 7;
    PlacementResult a = place(mapped, opts);
    PlacementResult b = place(mapped, opts);
    EXPECT_EQ(a.locations, b.locations);
    EXPECT_EQ(a.final_wirelength, b.final_wirelength);
}

TEST(Timing, CombDepthRaisesCriticalPath)
{
    auto shallow = elaborate_src(R"(
        module M(input wire clk, input wire [31:0] a,
                 output wire [31:0] o);
          reg [31:0] r = 0;
          always @(posedge clk) r <= a + 1;
          assign o = r;
        endmodule
    )");
    auto deep = elaborate_src(R"(
        module M(input wire clk, input wire [31:0] a,
                 output wire [31:0] o);
          reg [31:0] r = 0;
          always @(posedge clk)
            r <= ((a * 3) / 5) * ((a * 7) % 11) + (a * a);
          assign o = r;
        endmodule
    )");
    CompileOptions opts;
    opts.effort = 0.2;
    auto r1 = compile(*shallow, opts);
    auto r2 = compile(*deep, opts);
    ASSERT_TRUE(r1.ok);
    ASSERT_TRUE(r2.ok);
    EXPECT_LT(r1.report.timing.critical_path_ns,
              r2.report.timing.critical_path_ns);
}

TEST(Compile, TimeGrowsWithDesignSize)
{
    CompileOptions opts;
    opts.effort = 0.3;
    auto small = elaborate_src(pipeline_src(4));
    auto large = elaborate_src(pipeline_src(40));
    auto rs = compile(*small, opts);
    auto rl = compile(*large, opts);
    ASSERT_TRUE(rs.ok);
    ASSERT_TRUE(rl.ok);
    EXPECT_GT(rl.report.cells, rs.report.cells);
    EXPECT_GT(rl.report.anneal_moves, rs.report.anneal_moves);
    // Wall-clock compile time also grows (the property the JIT hides).
    EXPECT_GT(rl.report.place_seconds, rs.report.place_seconds);
}

TEST(Compile, ReportTotalIsSumOfPhases)
{
    // The invariant the telemetry sidecar relies on: total_seconds is
    // exactly the sum of the four per-phase timings, each nonnegative.
    CompileOptions opts;
    opts.effort = 0.2;
    auto em = elaborate_src(pipeline_src(12));
    auto r = compile(*em, opts);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GE(r.report.synth_seconds, 0.0);
    EXPECT_GE(r.report.techmap_seconds, 0.0);
    EXPECT_GE(r.report.place_seconds, 0.0);
    EXPECT_GE(r.report.timing_seconds, 0.0);
    EXPECT_GT(r.report.total_seconds, 0.0);
    EXPECT_NEAR(r.report.total_seconds,
                r.report.synth_seconds + r.report.techmap_seconds +
                    r.report.place_seconds + r.report.timing_seconds,
                1e-12);
    EXPECT_DOUBLE_EQ(r.report.total_seconds, r.report.phase_sum_seconds());
}

TEST(Compile, WrapperCostsArea)
{
    // The Fig. 10 instrumentation (shadow registers, masks, MMIO mux)
    // costs real area: the paper reports 2.9x on proof-of-work.
    const char* src = R"(
        module Cnt(input wire clk, input wire [31:0] d,
                   output wire [31:0] led);
          reg [31:0] cnt = 0;
          always @(posedge clk) cnt <= cnt + d;
          assign led = cnt;
        endmodule
    )";
    auto em = elaborate_src(src);
    CompileOptions opts;
    opts.effort = 0.1;
    auto direct = compile(*em, opts);
    ASSERT_TRUE(direct.ok) << direct.error;

    ir::WrapperMap map;
    Diagnostics diags;
    auto wrapper = ir::generate_hw_wrapper(*em, "clk", &map, &diags);
    ASSERT_NE(wrapper, nullptr) << diags.str();
    Diagnostics d2;
    Elaborator elab(&d2);
    auto wem = elab.elaborate(*wrapper);
    ASSERT_NE(wem, nullptr) << d2.str();
    auto wrapped = compile(*wem, opts);
    ASSERT_TRUE(wrapped.ok) << wrapped.error;

    EXPECT_GT(wrapped.report.area.les, direct.report.area.les);
    const double overhead =
        static_cast<double>(wrapped.report.area.les) /
        static_cast<double>(direct.report.area.les);
    // Same order as the paper's 2.9x-6.5x range.
    EXPECT_GT(overhead, 1.2);
    EXPECT_LT(overhead, 40.0);
}

TEST(Device, RejectsOversizedDesign)
{
    auto em = elaborate_src(pipeline_src(8));
    CompileOptions opts;
    opts.effort = 0.1;
    auto result = compile(*em, opts);
    ASSERT_TRUE(result.ok);
    FpgaDevice tiny(/*les=*/10, /*bram_bits=*/16, /*clock_mhz=*/50.0);
    std::string error;
    EXPECT_EQ(tiny.program(result, &error), nullptr);
    EXPECT_NE(error.find("does not fit"), std::string::npos);
}

TEST(Device, RejectsTimingFailure)
{
    auto em = elaborate_src(R"(
        module M(input wire clk, input wire [63:0] a,
                 output wire [63:0] o);
          reg [63:0] r = 0;
          always @(posedge clk) r <= (a * a) / (a + 1);
          assign o = r;
        endmodule
    )");
    CompileOptions opts;
    opts.effort = 0.1;
    opts.target_clock_mhz = 2000.0; // absurd target
    auto result = compile(*em, opts);
    ASSERT_TRUE(result.ok);
    EXPECT_FALSE(result.report.timing.met);
    FpgaDevice dev;
    std::string error;
    EXPECT_EQ(dev.program(result, &error), nullptr);
    EXPECT_NE(error.find("timing"), std::string::npos);
}

TEST(Device, ProgramsAndRuns)
{
    auto em = elaborate_src(R"(
        module M(input wire clk, output wire [7:0] o);
          reg [7:0] cnt = 0;
          always @(posedge clk) cnt <= cnt + 1;
          assign o = cnt;
        endmodule
    )");
    CompileOptions opts;
    opts.effort = 0.1;
    auto result = compile(*em, opts);
    ASSERT_TRUE(result.ok) << result.error;
    FpgaDevice dev;
    std::string error;
    auto fabric = dev.program(result, &error);
    ASSERT_NE(fabric, nullptr) << error;
    for (int i = 0; i < 5; ++i) {
        fabric->set_input("clk", BitVector(1, 1));
        fabric->step();
        fabric->set_input("clk", BitVector(1, 0));
        fabric->step();
    }
    EXPECT_EQ(fabric->output("o").to_uint64(), 5u);
}

} // namespace
} // namespace cascade::fpga
