/// \file
/// Interactive debugger tests: conditional breakpoints, value-change
/// watchpoints, cycle-stepping and peeks in software; hardware triggers
/// synthesized into the fabric twin that evict to software and re-admit
/// on continue; the ILA-style pre-trigger capture window byte-matching
/// an open VCD dump's tail; $monitor suppression across the
/// evict-step-readmit cycle; and deterministic record/replay of a
/// session with a hardware trigger (including tamper detection).

#include "runtime/debugger.h"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/replay.h"
#include "runtime/runtime.h"

namespace cascade::runtime {
namespace {

std::string
temp_path(const char* name)
{
    return (std::filesystem::temp_directory_path() /
            (std::string("cascade_debugger_test_") + name +
             std::to_string(::getpid())))
        .string();
}

std::string
read_file(const std::string& path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// Drops the $date header line so dumps from different wall-clock runs
/// can be compared byte-for-byte.
std::string
strip_date(const std::string& vcd)
{
    std::istringstream in(vcd);
    std::string out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("$date", 0) == 0) {
            continue;
        }
        out += line;
        out += '\n';
    }
    return out;
}

/// The runtime reports fires and window dumps on the output stream as
/// "debug:" interrupt lines; drop them when comparing program output.
std::vector<std::string>
without_debug_lines(const std::vector<std::string>& lines)
{
    std::vector<std::string> out;
    for (const auto& line : lines) {
        if (line.rfind("debug:", 0) != 0) {
            out.push_back(line);
        }
    }
    return out;
}

Runtime::Options
sw_only()
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    return opts;
}

Runtime::Options
hw_fast()
{
    Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;          // keep tests fast
    opts.open_loop_target_wall_s = 0.02; // small adaptive batches too
    return opts;
}

/// Steps the scheduler until a debug point fires (bounded by wall time).
bool
run_until_halted(Runtime* rt, double timeout_s = 60.0)
{
    const auto start = std::chrono::steady_clock::now();
    while (!rt->debug_halted()) {
        rt->step();
        if (std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count() > timeout_s) {
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// Software engine: break / step / peek / continue
// ---------------------------------------------------------------------

const char* kCounter8 = R"(
    reg [7:0] cnt = 0;
    always @(posedge clk.val)
      cnt <= cnt + 1;
)";

TEST(Debugger, SoftwareBreakStepPeekContinue)
{
    const std::string win_path = temp_path("sw_window.vcd");
    Runtime rt(sw_only());
    rt.on_output = [](const std::string&) {};
    rt.set_debug_window_path(win_path);
    std::string err;
    ASSERT_TRUE(rt.eval(kCounter8, &err)) << err;

    // Arming validates the operator and the signal name up front.
    EXPECT_EQ(rt.debug_break("cnt", "<>", "5", &err), 0u);
    EXPECT_EQ(rt.debug_break("no_such_signal", "==", "5", &err), 0u);
    // Stepping is only legal while halted.
    EXPECT_FALSE(rt.debug_step(1, &err));

    const uint64_t id = rt.debug_break("cnt", "==", "5", &err);
    ASSERT_NE(id, 0u) << err;
    EXPECT_TRUE(rt.debugger().armed());

    // run_for_ticks() returns early at the halt instead of completing.
    rt.run_for_ticks(100);
    ASSERT_TRUE(rt.debug_halted());
    EXPECT_LT(rt.virtual_ticks(), 100u);
    auto v = rt.debug_peek("cnt", &err);
    ASSERT_TRUE(v.has_value()) << err;
    EXPECT_EQ(v->to_uint64(), 5u);
    EXPECT_EQ(rt.telemetry().counter("debug.fires")->value(), 1u);

    // The halt lands at the end of the timestep where the condition rose,
    // which may be mid-tick (the clock low phase still pending). One step
    // aligns to a tick boundary; from there stepping is cycle-exact.
    EXPECT_TRUE(rt.debug_step(1, &err)) << err;
    ASSERT_TRUE(rt.debug_halted()); // stepping does not resume
    const uint64_t t1 = rt.virtual_ticks();
    const uint64_t c1 = rt.debug_peek("cnt", &err)->to_uint64();
    EXPECT_TRUE(rt.debug_step(4, &err)) << err;
    EXPECT_EQ(rt.virtual_ticks(), t1 + 4);
    EXPECT_EQ(rt.debug_peek("cnt", &err)->to_uint64(), c1 + 4);

    // While halted the virtual clock is frozen for everything but :step.
    const uint64_t frozen = rt.virtual_ticks();
    rt.run_for_ticks(10);
    rt.run(50);
    EXPECT_EQ(rt.virtual_ticks(), frozen);

    EXPECT_TRUE(rt.debug_continue());
    EXPECT_FALSE(rt.debug_continue()); // already running
    EXPECT_FALSE(rt.debug_halted());
    rt.run_for_ticks(10);
    EXPECT_EQ(rt.virtual_ticks(), frozen + 10);
    // cnt==5 recurs only after the 8-bit wrap; no spurious re-fire.
    EXPECT_EQ(rt.telemetry().counter("debug.fires")->value(), 1u);

    EXPECT_TRUE(rt.debug_delete(id));
    EXPECT_FALSE(rt.debug_delete(id));
    EXPECT_FALSE(rt.debugger().armed());
    EXPECT_EQ(rt.telemetry().gauge("debug.points")->value(), 0);

    std::filesystem::remove(win_path);
}

TEST(Debugger, DebugTableAndJsonReflectState)
{
    const std::string win_path = temp_path("table_window.vcd");
    Runtime rt(sw_only());
    rt.on_output = [](const std::string&) {};
    rt.set_debug_window_path(win_path);
    std::string err;
    ASSERT_TRUE(rt.eval(kCounter8, &err)) << err;
    ASSERT_NE(rt.debug_break("cnt", ">=", "3", &err), 0u) << err;
    ASSERT_NE(rt.debug_watch("cnt", &err), 0u) << err;

    const std::string table = rt.debug_table();
    EXPECT_NE(table.find("break cnt >= 3"), std::string::npos) << table;
    EXPECT_NE(table.find("watch cnt"), std::string::npos) << table;

    const std::string json = rt.debug_json();
    EXPECT_NE(json.find("\"schema\":\"cascade.debug.v1\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"points\":2"), std::string::npos) << json;

    rt.run_for_ticks(50);
    ASSERT_TRUE(rt.debug_halted());
    EXPECT_NE(rt.debug_table().find("HALTED"), std::string::npos);
    EXPECT_NE(rt.debug_json().find("\"halted\":true"), std::string::npos);

    std::filesystem::remove(win_path);
}

// ---------------------------------------------------------------------
// Hardware trigger: armed pre-adoption, synthesized at adoption, fires
// from the fabric, evicts to software, cycle-steps, re-admits
// ---------------------------------------------------------------------

const char* kCounter16 = R"(
    reg [15:0] cnt = 0;
    always @(posedge clk.val)
      cnt <= cnt + 1;
)";

TEST(Debugger, HardwareTriggerEvictsStepsAndReadmits)
{
    Runtime::Options opts = hw_fast();
    opts.enable_open_loop = false; // deterministic tick accounting
    const std::string win_path = temp_path("hw_window.vcd");
    Runtime rt(opts);
    rt.on_output = [](const std::string&) {};
    rt.set_debug_window_path(win_path);
    std::string err;
    ASSERT_TRUE(rt.eval(kCounter16, &err)) << err;

    // Arm while still in software: adoption must carry the point into
    // the fabric (trigger comparator cells in the instrumented twin).
    const uint64_t id = rt.debug_break("cnt", "==", "300", &err);
    ASSERT_NE(id, 0u) << err;
    rt.run_for_ticks(4);
    // Fabric instrumentation appears exactly when the program leaves the
    // interpreter — which may be almost immediately when a warm JIT
    // kernel (cached .so from an earlier run) adopts within these ticks.
    EXPECT_EQ(rt.hw_debug_armed(),
              rt.user_location() != Location::Software);

    ASSERT_TRUE(rt.wait_for_hardware(30.0));
    EXPECT_NE(rt.user_location(), Location::Software);
    EXPECT_TRUE(rt.hw_debug_armed());
    EXPECT_NE(rt.debug_table().find("triggers in fabric"),
              std::string::npos);

    // Run until the comparator fires in the fabric. The fire evicts the
    // tenant to software so the user can cycle-step in the interpreter.
    ASSERT_TRUE(run_until_halted(&rt));
    EXPECT_EQ(rt.user_location(), Location::Software);
    EXPECT_EQ(rt.debug_peek("cnt", &err)->to_uint64(), 300u);
    EXPECT_EQ(rt.telemetry().counter("debug.fires")->value(), 1u);
    EXPECT_EQ(rt.telemetry().gauge("debug.halted")->value(), 1);

    // Cycle-accurate stepping in the interpreter after the hw handoff.
    EXPECT_TRUE(rt.debug_step(1, &err)) << err;
    const uint64_t t1 = rt.virtual_ticks();
    const uint64_t c1 = rt.debug_peek("cnt", &err)->to_uint64();
    EXPECT_TRUE(rt.debug_step(8, &err)) << err;
    EXPECT_EQ(rt.virtual_ticks(), t1 + 8);
    EXPECT_EQ(rt.debug_peek("cnt", &err)->to_uint64(), c1 + 8);

    // Continue: the eviction already queued a recompile, so the tenant
    // is re-admitted to hardware -- with the trigger re-instrumented.
    EXPECT_TRUE(rt.debug_continue());
    EXPECT_EQ(rt.telemetry().gauge("debug.halted")->value(), 0);
    ASSERT_TRUE(rt.wait_for_hardware(30.0));
    EXPECT_NE(rt.user_location(), Location::Software);
    EXPECT_TRUE(rt.hw_debug_armed());

    // Deleting the last point swaps the plain (uninstrumented) twin in.
    EXPECT_TRUE(rt.debug_delete(id));
    EXPECT_FALSE(rt.hw_debug_armed());
    rt.run_for_ticks(8);
    EXPECT_FALSE(rt.debug_halted());

    std::filesystem::remove(win_path);
}

// ---------------------------------------------------------------------
// Pre-trigger capture window vs. an open VCD dump
// ---------------------------------------------------------------------

TEST(Debugger, PreTriggerWindowByteMatchesVcdTail)
{
    const std::string vcd_path = temp_path("main.vcd");
    const std::string win_path = temp_path("window.vcd");

    Runtime rt(sw_only());
    std::string err;
    // `hit` is a reg (probes and debug points resolve nets and regs):
    // it rises exactly once, one posedge after cnt passes 20.
    ASSERT_TRUE(rt.eval(R"(
        reg [7:0] cnt = 0;
        reg hit = 0;
        always @(posedge clk.val) begin
          cnt <= cnt + 1;
          hit <= (cnt >= 8'd20);
        end
    )", &err)) << err;

    ASSERT_TRUE(rt.add_probe("cnt", &err)) << err;
    ASSERT_TRUE(rt.add_probe("hit", &err)) << err;
    ASSERT_TRUE(rt.vcd_open(vcd_path, &err)) << err;
    rt.run_for_ticks(4);

    rt.set_debug_window_path(win_path);
    ASSERT_NE(rt.debug_watch("hit", &err), 0u) << err;
    rt.run_for_ticks(40);
    ASSERT_TRUE(rt.debug_halted());
    EXPECT_EQ(rt.debug_peek("hit", &err)->to_uint64(), 1u);
    rt.close_vcd();

    const std::string main_dump = read_file(vcd_path);
    const std::string window = read_file(win_path);
    ASSERT_FALSE(main_dump.empty());
    ASSERT_FALSE(window.empty());
    EXPECT_NE(window.find("$dumpvars"), std::string::npos) << window;

    // The window's first time block is a full-value dump (the ring's
    // oldest sample); every block after it is a change record stream
    // that must be byte-identical to the tail of the live dump -- same
    // probes, same identifier codes, same suppression decisions.
    size_t second_block = window.find("\n#");
    ASSERT_NE(second_block, std::string::npos);
    second_block = window.find("\n#", second_block + 1);
    ASSERT_NE(second_block, std::string::npos) << window;
    const std::string tail = window.substr(second_block + 1);
    ASSERT_FALSE(tail.empty());
    ASSERT_GE(main_dump.size(), tail.size());
    EXPECT_EQ(main_dump.compare(main_dump.size() - tail.size(),
                                tail.size(), tail),
              0)
        << "window tail:\n"
        << tail << "\nmain dump:\n"
        << main_dump;

    std::filesystem::remove(vcd_path);
    std::filesystem::remove(win_path);
}

// ---------------------------------------------------------------------
// $monitor suppression across evict-step-readmit
// ---------------------------------------------------------------------

TEST(Debugger, MonitorSuppressionSurvivesEvictStepReadmit)
{
    // cnt[2] changes every 4 ticks: $monitor must print only on change,
    // and the halt/evict/step/readmit cycle must not duplicate or drop
    // lines. The whole debug session is compared line-for-line against
    // an undisturbed software run of the same total tick count.
    const char* src = R"(
        reg [15:0] cnt = 0;
        always @(posedge clk.val) begin
          cnt <= cnt + 1;
          $monitor("bit=%0d", cnt[2]);
        end
    )";

    std::vector<std::string> debug_lines;
    uint64_t total_ticks = 0;
    {
        Runtime::Options opts = hw_fast();
        opts.enable_open_loop = false;
        Runtime rt(opts);
        rt.set_debug_window_path(temp_path("monitor_window.vcd"));
        rt.on_output = [&debug_lines](const std::string& s) {
            debug_lines.push_back(s);
        };
        std::string err;
        ASSERT_TRUE(rt.eval(src, &err)) << err;
        ASSERT_NE(rt.debug_break("cnt", "==", "50", &err), 0u) << err;
        ASSERT_TRUE(rt.wait_for_hardware(30.0));
        ASSERT_TRUE(run_until_halted(&rt));
        EXPECT_EQ(rt.user_location(), Location::Software);
        // Step through a monitor-visible edge while halted.
        EXPECT_TRUE(rt.debug_step(6, &err)) << err;
        EXPECT_TRUE(rt.debug_continue());
        ASSERT_TRUE(rt.wait_for_hardware(30.0));
        rt.run_for_ticks(20);
        EXPECT_FALSE(rt.debug_halted());
        total_ticks = rt.virtual_ticks();
    }
    ASSERT_FALSE(debug_lines.empty());

    std::vector<std::string> plain_lines;
    {
        Runtime rt(sw_only());
        rt.on_output = [&plain_lines](const std::string& s) {
            plain_lines.push_back(s);
        };
        std::string err;
        ASSERT_TRUE(rt.eval(src, &err)) << err;
        rt.run_for_ticks(total_ticks);
    }

    // Drop the runtime's own "debug:" interrupt lines (fire + window
    // notices) before comparing; the program's monitor stream must be
    // line-for-line identical to the undisturbed run.
    const auto monitor_lines = without_debug_lines(debug_lines);
    EXPECT_EQ(monitor_lines, plain_lines);
    // And the defining property directly: adjacent lines always differ.
    for (size_t i = 1; i < monitor_lines.size(); ++i) {
        EXPECT_NE(monitor_lines[i], monitor_lines[i - 1])
            << "duplicate monitor line at " << i;
    }

    std::filesystem::remove(temp_path("monitor_window.vcd"));
}

// ---------------------------------------------------------------------
// Record/replay round trip with a hardware trigger
// ---------------------------------------------------------------------

TEST(Debugger, ReplayRoundTripWithHardwareTrigger)
{
    const std::string path = temp_path("roundtrip.jsonl");
    const std::string win_path = temp_path("replay_window.vcd");

    std::string recorded_output;
    uint64_t recorded_fires = 0;
    {
        Runtime rt(hw_fast());
        rt.on_output = [&recorded_output](const std::string& s) {
            recorded_output += s;
        };
        rt.set_debug_window_path(win_path);
        std::string err;
        ASSERT_TRUE(rt.start_recording(path, &err)) << err;
        ASSERT_TRUE(rt.eval(R"(
            reg [15:0] cnt = 0;
            always @(posedge clk.val) begin
              cnt <= cnt + 1;
              if (cnt % 100 == 0) $display("cnt=%0d", cnt);
            end
        )", &err)) << err;
        ASSERT_NE(rt.debug_break("cnt", "==", "300", &err), 0u) << err;
        ASSERT_TRUE(rt.wait_for_hardware(30.0));
        ASSERT_TRUE(rt.hw_debug_armed());
        ASSERT_TRUE(run_until_halted(&rt));
        ASSERT_TRUE(rt.debug_peek("cnt", &err).has_value());
        ASSERT_TRUE(rt.debug_step(4, &err)) << err;
        ASSERT_TRUE(rt.debug_peek("cnt", &err).has_value());
        ASSERT_TRUE(rt.debug_continue());
        rt.run_for_ticks(200);
        rt.stop_recording();
        recorded_fires = rt.telemetry().counter("debug.fires")->value();
        EXPECT_GE(recorded_fires, 1u);
    }
    ASSERT_FALSE(recorded_output.empty());

    ReplayLog log;
    std::string err;
    ASSERT_TRUE(load_journal(path, &log, &err)) << err;
    bool saw_hw_fire = false;
    for (const auto& ev : log.events) {
        if (ev.type == "debug.fire" &&
            ev.data_raw.find("\"origin\":\"hw\"") != std::string::npos) {
            saw_hw_fire = true;
        }
    }
    ASSERT_TRUE(saw_hw_fire);

    // Replay regenerates the pre-trigger window dump too: point the
    // replayed runtime at the same path (the recorded bytes are saved
    // above) and demand an identical file.
    const std::string recorded_window = strip_date(read_file(win_path));
    ASSERT_FALSE(recorded_window.empty());
    Runtime rt2(options_from_header(log.header));
    rt2.set_debug_window_path(win_path);
    std::string replayed_output;
    rt2.on_output = [&replayed_output](const std::string& s) {
        replayed_output += s;
    };
    const ReplayReport report = replay_into(&rt2, log);
    EXPECT_TRUE(report.ok) << report.summary();
    EXPECT_FALSE(report.diverged) << report.summary();
    EXPECT_EQ(replayed_output, recorded_output);
    EXPECT_EQ(rt2.telemetry().counter("debug.fires")->value(),
              recorded_fires);
    EXPECT_EQ(strip_date(read_file(win_path)), recorded_window);

    std::filesystem::remove(path);
    std::filesystem::remove(win_path);
}

TEST(Debugger, TamperedFireIterationReportsFirstDivergence)
{
    const std::string path = temp_path("tamper.jsonl");
    {
        Runtime rt(sw_only());
        rt.on_output = [](const std::string&) {};
        rt.set_debug_window_path(temp_path("tamper_window.vcd"));
        // (window file removed at the end of the test)
        std::string err;
        ASSERT_TRUE(rt.start_recording(path, &err)) << err;
        ASSERT_TRUE(rt.eval(kCounter8, &err)) << err;
        ASSERT_NE(rt.debug_break("cnt", "==", "9", &err), 0u) << err;
        rt.run_for_ticks(40);
        ASSERT_TRUE(rt.debug_halted());
        ASSERT_TRUE(rt.debug_continue());
        rt.run_for_ticks(10);
        rt.stop_recording();
    }

    // Bump the recorded fire's tick count: the replayed fire happens at
    // the true tick, so the comparator must flag exactly this event.
    std::string text = read_file(path);
    const size_t fire_at = text.find("debug.fire");
    ASSERT_NE(fire_at, std::string::npos);
    const size_t tick_key = text.find("\"tick\":", fire_at);
    ASSERT_NE(tick_key, std::string::npos);
    const size_t digits = tick_key + std::string("\"tick\":").size();
    size_t digits_end = digits;
    while (digits_end < text.size() && isdigit(text[digits_end]) != 0) {
        ++digits_end;
    }
    const uint64_t tick =
        std::stoull(text.substr(digits, digits_end - digits));
    text.replace(digits, digits_end - digits, std::to_string(tick + 7));

    const size_t line_start = text.rfind('\n', fire_at) + 1;
    const size_t line_end = text.find('\n', fire_at);
    telemetry::JsonValue tampered_line;
    ASSERT_TRUE(telemetry::parse_json(
        text.substr(line_start, line_end - line_start), &tampered_line));
    const uint64_t tampered_seq = tampered_line.get_u64("seq");
    ASSERT_GT(tampered_seq, 0u);

    std::ofstream out(path, std::ios::trunc);
    out << text;
    out.close();

    const ReplayReport report = replay_journal(path);
    EXPECT_FALSE(report.ok);
    ASSERT_TRUE(report.diverged) << report.summary();
    EXPECT_EQ(report.divergence_type, "debug.fire") << report.summary();
    EXPECT_EQ(report.divergence_seq, tampered_seq) << report.summary();

    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------
// Monitor endpoint: /debug and halted heartbeat plumbing
// ---------------------------------------------------------------------

TEST(Debugger, HaltedGaugeAppearsInTimeseries)
{
    Runtime::Options opts = sw_only();
    opts.timeseries_interval_s = 0.0005; // sample on ~every window
    const std::string win_path = temp_path("ts_window.vcd");
    Runtime rt(opts);
    rt.on_output = [](const std::string&) {};
    rt.set_debug_window_path(win_path);
    std::string err;
    ASSERT_TRUE(rt.eval(kCounter8, &err)) << err;
    ASSERT_NE(rt.debug_break("cnt", "==", "3", &err), 0u) << err;
    rt.run_for_ticks(20);
    ASSERT_TRUE(rt.debug_halted());
    // The halt gate keeps the telemetry heartbeat alive: stepping the
    // scheduler while halted samples "runtime.halted" = 1 even though
    // the virtual clock is frozen (the /timeseries flatline fix).
    const uint64_t frozen = rt.virtual_ticks();
    for (int i = 0; i < 8; ++i) {
        rt.step();
        usleep(1000);
    }
    EXPECT_EQ(rt.virtual_ticks(), frozen); // still frozen
    const std::string ts = rt.timeseries_json();
    EXPECT_NE(ts.find("runtime.halted"), std::string::npos) << ts;

    std::filesystem::remove(win_path);
}

} // namespace
} // namespace cascade::runtime
