/// \file
/// The REPL controller/view (paper §3.1, Fig. 3): Verilog is lexed,
/// parsed, and type-checked one input at a time; code that passes is
/// integrated into the running program, and IO side effects are visible
/// immediately. Also supports batch mode with input provided from a file.
///
/// Lines starting with ':' (when no Verilog is being accumulated) are
/// meta-commands: `:stats` prints the runtime's telemetry table, `:stats
/// json` the machine-readable snapshot, `:trace <file>` dumps the global
/// span buffer as Chrome trace_event JSON, `:probe <signal>` /
/// `:unprobe <signal>` manage waveform probes, `:vcd <file>` starts VCD
/// capture of the probed (or all) signals, `:help` lists the commands.

#ifndef CASCADE_RUNTIME_REPL_H
#define CASCADE_RUNTIME_REPL_H

#include <iosfwd>
#include <string>

#include "runtime/runtime.h"

namespace cascade::runtime {

class Repl {
  public:
    /// Output (program $display/$write and REPL messages) goes to \p out.
    Repl(Runtime* runtime, std::ostream* out);

    /// Feeds one chunk of input. Complete declarations are eval'ed; a
    /// trailing incomplete module accumulates until its endmodule arrives.
    /// Returns false if the chunk was rejected.
    bool feed(const std::string& text);

    /// Batch mode: feeds the whole stream, then runs until $finish or
    /// \p max_iterations.
    bool run_batch(std::istream& in, uint64_t max_iterations);

    const std::string& prompt() const;

  private:
    bool buffer_complete() const;
    /// Executes one ':' meta-command line. Returns true (commands never
    /// reject the input stream).
    bool run_meta_command(const std::string& line);

    Runtime* runtime_;
    std::ostream* out_;
    std::string buffer_;
};

} // namespace cascade::runtime

#endif // CASCADE_RUNTIME_REPL_H
