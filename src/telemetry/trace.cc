#include "telemetry/trace.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>

#include "telemetry/sync.h"

namespace cascade::telemetry {

namespace {

thread_local uint32_t tls_depth = 0;

uint32_t
next_thread_id()
{
    static std::atomic<uint32_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

} // namespace

Tracer::Tracer(size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now())
{}

Tracer&
Tracer::global()
{
    static Tracer instance;
    return instance;
}

double
Tracer::now_us() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

uint32_t
Tracer::thread_id()
{
    thread_local const uint32_t id = next_thread_id();
    return id;
}

void
Tracer::push(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == ring_.size()) {
        ++dropped_;
    } else {
        ++count_;
    }
    ring_[next_] = event;
    next_ = (next_ + 1) % ring_.size();
}

void
Tracer::record_complete(const char* name, double ts_us, double dur_us,
                        uint32_t depth)
{
    TraceEvent e;
    e.name = name;
    e.ts_us = ts_us;
    e.dur_us = dur_us;
    e.tid = thread_id();
    e.depth = depth;
    e.tenant = thread_tenant();
    push(e);
}

void
Tracer::record_complete(const char* name, double ts_us, double dur_us,
                        uint32_t depth, uint64_t arg)
{
    TraceEvent e;
    e.name = name;
    e.ts_us = ts_us;
    e.dur_us = dur_us;
    e.tid = thread_id();
    e.depth = depth;
    e.has_arg = true;
    e.arg = arg;
    e.tenant = thread_tenant();
    push(e);
}

void
Tracer::record_complete_tenant(const char* name, double ts_us,
                               double dur_us, uint64_t tenant)
{
    TraceEvent e;
    e.name = name;
    e.ts_us = ts_us;
    e.dur_us = dur_us;
    e.tid = thread_id();
    e.tenant = tenant;
    push(e);
}

void
Tracer::instant(const char* name)
{
    TraceEvent e;
    e.name = name;
    e.ts_us = now_us();
    e.tid = thread_id();
    e.instant = true;
    e.tenant = thread_tenant();
    push(e);
}

void
Tracer::instant(const char* name, uint64_t arg)
{
    TraceEvent e;
    e.name = name;
    e.ts_us = now_us();
    e.tid = thread_id();
    e.instant = true;
    e.has_arg = true;
    e.arg = arg;
    e.tenant = thread_tenant();
    push(e);
}

void
Tracer::instant_tenant(const char* name, uint64_t tenant, uint64_t arg)
{
    TraceEvent e;
    e.name = name;
    e.ts_us = now_us();
    e.tid = thread_id();
    e.instant = true;
    e.has_arg = true;
    e.arg = arg;
    e.tenant = tenant;
    push(e);
}

void
Tracer::flow(const char* name, char phase, uint64_t id)
{
    flow_tenant(name, phase, id, thread_tenant(), now_us());
}

void
Tracer::flow_tenant(const char* name, char phase, uint64_t id,
                    uint64_t tenant, double ts_us)
{
    TraceEvent e;
    e.name = name;
    e.ts_us = ts_us;
    e.tid = thread_id();
    e.tenant = tenant;
    e.flow_phase = phase;
    e.flow_id = id;
    push(e);
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceEvent> out;
    out.reserve(count_);
    const size_t start =
        count_ == ring_.size() ? next_ : (next_ + ring_.size() - count_) %
                                             ring_.size();
    for (size_t i = 0; i < count_; ++i) {
        out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
}

size_t
Tracer::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    next_ = 0;
    count_ = 0;
    dropped_ = 0;
}

std::string
Tracer::chrome_json() const
{
    const std::vector<TraceEvent> evs = events();
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    char buf[256];
    bool first = true;
    // Tenant lanes: tenant N exports as pid 1+N so a multi-tenant run
    // renders as one swimlane per tenant. pid 1 (tenant 0 / exclusive
    // mode) is unchanged and gets no metadata, preserving the legacy
    // single-process trace shape.
    std::set<uint64_t> tenants;
    for (const TraceEvent& e : evs) {
        if (e.tenant != 0) {
            tenants.insert(e.tenant);
        }
    }
    for (const uint64_t t : tenants) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
               std::to_string(1 + t) +
               ",\"args\":{\"name\":\"tenant " + std::to_string(t) +
               "\"}}";
    }
    for (const TraceEvent& e : evs) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += "{\"name\":\"" + json_escape(e.name) +
               "\",\"cat\":\"cascade\",\"pid\":" +
               std::to_string(1 + e.tenant) +
               ",\"tid\":" + std::to_string(e.tid);
        std::snprintf(buf, sizeof buf, ",\"ts\":%.3f", e.ts_us);
        out += buf;
        if (e.flow_phase != 0) {
            // Flow arrow anchor: binds to the slice enclosing ts on this
            // thread; "bp":"e" makes the finish bind to the enclosing
            // slice rather than the next one.
            out += ",\"ph\":\"";
            out += e.flow_phase;
            out += "\",\"id\":" + std::to_string(e.flow_id);
            if (e.flow_phase == 'f') {
                out += ",\"bp\":\"e\"";
            }
        } else if (e.instant) {
            out += ",\"ph\":\"i\",\"s\":\"t\"";
        } else {
            std::snprintf(buf, sizeof buf, ",\"ph\":\"X\",\"dur\":%.3f",
                          e.dur_us);
            out += buf;
        }
        if (e.has_arg) {
            out += ",\"args\":{\"value\":" + std::to_string(e.arg) + '}';
        }
        out += '}';
    }
    out += "]}";
    return out;
}

bool
Tracer::write_chrome_json(const std::string& path) const
{
    std::ofstream file(path);
    if (!file) {
        return false;
    }
    file << chrome_json() << '\n';
    return static_cast<bool>(file);
}

SpanGuard::SpanGuard(Tracer& tracer, const char* name,
                     Histogram* duration_ns)
    : tracer_(tracer), name_(name), duration_ns_(duration_ns),
      start_us_(tracer.now_us()), depth_(tls_depth)
{
    ++tls_depth;
}

SpanGuard::~SpanGuard()
{
    --tls_depth;
    const double dur_us = tracer_.now_us() - start_us_;
    tracer_.record_complete(name_, start_us_, dur_us, depth_);
    if (duration_ns_ != nullptr) {
        duration_ns_->record(static_cast<uint64_t>(dur_us * 1000.0));
    }
}

} // namespace cascade::telemetry
