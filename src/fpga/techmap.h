/// \file
/// Technology mapping: lowers a word-level netlist onto the device's
/// logic-element (4-LUT + FF) fabric, producing per-node area costs, the
/// cell graph used by placement, and aggregate area numbers (the paper's
/// spatial-overhead metric).

#ifndef CASCADE_FPGA_TECHMAP_H
#define CASCADE_FPGA_TECHMAP_H

#include <cstdint>
#include <vector>

#include "fpga/netlist.h"

namespace cascade::fpga {

struct AreaEstimate {
    uint64_t les = 0;       ///< logic elements (LUT4 + optional FF)
    uint64_t ffs = 0;       ///< flip-flops (subset of les)
    uint64_t bram_bits = 0; ///< block-RAM bits for memories

    bool
    fits(uint64_t device_les, uint64_t device_bram_bits) const
    {
        return les <= device_les && bram_bits <= device_bram_bits;
    }
};

/// One placeable cell (a mapped netlist node with nonzero area).
struct Cell {
    uint32_t node = 0; ///< originating netlist node
    uint32_t les = 1;  ///< logic elements occupied
    /// Provenance: index into the netlist's src_labels (the source
    /// construct this cell's node was synthesized from). Carried through
    /// mapping so placement/timing/activity reports can attribute cells
    /// to user code without a netlist in hand.
    uint32_t src = 0;
};

/// Connectivity for placement: cell indices joined by a signal.
struct CellEdge {
    uint32_t a = 0;
    uint32_t b = 0;
};

struct MappedDesign {
    AreaEstimate area;
    std::vector<Cell> cells;
    std::vector<CellEdge> edges;
    /// Per-netlist-node intrinsic delay in nanoseconds (0 for free ops).
    std::vector<double> node_delay_ns;
    /// Per-netlist-node cell index (-1 when the node mapped to wiring).
    std::vector<int32_t> cell_of_node;
};

/// LE cost of a single node (exposed for tests and ablation benches).
uint32_t le_cost(const Node& node);

/// Intrinsic (pre-routing) delay of a node in nanoseconds.
double node_delay_ns(const Node& node);

MappedDesign technology_map(const Netlist& nl);

} // namespace cascade::fpga

#endif // CASCADE_FPGA_TECHMAP_H
