/// \file
/// Word-level RTL netlist: the output of synthesis and the input to
/// technology mapping, placement, timing analysis, and the levelized
/// bitstream evaluator. Nodes are hash-consed and constant-folded at
/// construction.

#ifndef CASCADE_FPGA_NETLIST_H
#define CASCADE_FPGA_NETLIST_H

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"

namespace cascade::fpga {

enum class Op : uint8_t {
    Const,   ///< cval
    Input,   ///< aux = input index
    RegQ,    ///< aux = register index
    MemRead, ///< aux = memory index, args = {addr}

    Not, And, Or, Xor,                   ///< bitwise, equal widths
    Add, Sub, Mul, Divu, Remu, Divs, Rems, Pow,
    Eq, Ult, Slt,                        ///< 1-bit results
    Shl, Lshr, Ashr,                     ///< args = {value, amount}
    Mux,                                 ///< args = {sel(1), a, b}
    Concat,                              ///< args MSB-first
    Slice,                               ///< aux = lsb, width = out width
    DynSlice,                            ///< args = {value, offset}
    ReduceAnd, ReduceOr, ReduceXor,      ///< 1-bit results
    ZExt, SExt,                          ///< width = out width
};

struct Node {
    Op op = Op::Const;
    uint32_t width = 1;
    uint32_t aux = 0;
    std::vector<uint32_t> args;
    BitVector cval; ///< Const only
};

/// Sentinel clock for registers that never latch (pure state).
inline constexpr uint32_t kNoClock = ~0u;

struct RegDef {
    std::string name;
    uint32_t width = 1;
    uint32_t q = 0;          ///< the RegQ node
    uint32_t next = 0;       ///< data input (node id)
    uint32_t clock = kNoClock; ///< 1-bit clock node; latches on its rise
    BitVector init;
};

struct MemDef {
    std::string name;
    uint32_t width = 1;
    uint32_t size = 0;
    /// Sparse initial contents (from initial blocks).
    std::map<uint64_t, BitVector> init;
};

struct MemWritePort {
    uint32_t mem = 0;
    uint32_t addr = 0;
    uint32_t data = 0;
    uint32_t enable = 0; ///< 1-bit
    uint32_t clock = 0;  ///< 1-bit, rising edge
};

struct PortDef {
    std::string name;
    uint32_t node = 0;
    uint32_t width = 1;
};

struct Netlist {
    std::vector<Node> nodes;
    std::vector<RegDef> regs;
    std::vector<MemDef> mems;
    std::vector<MemWritePort> write_ports;
    std::vector<PortDef> inputs;
    std::vector<PortDef> outputs;

    /// @{ Source provenance. Every node carries the label of the source
    /// construct (net, process, or port) that synthesis was elaborating
    /// when the node was created; labels are interned in src_labels and
    /// node_src holds one index per node (parallel to nodes). Hash-consed
    /// nodes keep the label of their first creator. node_names records
    /// exact net-name aliases for nodes that hold a named signal's value,
    /// so timing reports can name path hops after user signals.
    std::vector<std::string> src_labels;
    std::vector<uint32_t> node_src;
    std::map<uint32_t, std::string> node_names;
    /// @}

    size_t size() const { return nodes.size(); }

    /// Provenance label of \p node ("" when unlabeled).
    const std::string& source_of(uint32_t node) const;
    /// Best human name for \p node: exact net alias, else reg/port name,
    /// else the provenance label. Never empty for labeled netlists; falls
    /// back to "n<id>" otherwise.
    std::string name_of(uint32_t node) const;
};

/// Builds nodes with hash-consing and constant folding.
class NetlistBuilder {
  public:
    explicit NetlistBuilder(Netlist* nl) : nl_(nl)
    {
        // Label 0 is the fallback for nodes created before any
        // set_source call.
        if (nl_->src_labels.empty()) {
            nl_->src_labels.emplace_back("(unattributed)");
        }
        src_index_[nl_->src_labels[0]] = 0;
    }

    uint32_t constant(const BitVector& v);
    uint32_t constant(uint32_t width, uint64_t v);
    uint32_t input(const std::string& name, uint32_t width);
    uint32_t reg(const std::string& name, uint32_t width,
                 const BitVector& init);
    uint32_t memory(const std::string& name, uint32_t width, uint32_t size);
    uint32_t mem_read(uint32_t mem_index, uint32_t addr, uint32_t width);
    void mem_write(uint32_t mem_index, uint32_t addr, uint32_t data,
                   uint32_t enable, uint32_t clock);
    void set_reg_next(uint32_t reg_index, uint32_t next,
                      uint32_t clock);
    void output(const std::string& name, uint32_t node);

    /// Generic op constructor with folding + consing.
    uint32_t make(Op op, uint32_t width, std::vector<uint32_t> args,
                  uint32_t aux = 0);

    /// @{ Convenience wrappers (all fold constants).
    uint32_t zext(uint32_t a, uint32_t width);
    uint32_t sext(uint32_t a, uint32_t width);
    /// Resize with explicit signedness (slice when shrinking).
    uint32_t resize(uint32_t a, uint32_t width, bool sign);
    uint32_t slice(uint32_t a, uint32_t lsb, uint32_t width);
    uint32_t mux(uint32_t sel, uint32_t a, uint32_t b);
    uint32_t to_bool(uint32_t a); ///< ReduceOr unless already 1 bit
    /// Write \p v into bits [lsb +: v.width] of \p base (constant lsb).
    uint32_t set_slice_const(uint32_t base, uint32_t lsb, uint32_t v);
    /// Write \p v into bits [offset +: width(v)] of \p base (dynamic).
    uint32_t set_slice_dyn(uint32_t base, uint32_t offset, uint32_t v);
    /// @}

    /// @{ Provenance. set_source establishes the label attached to every
    /// node created until the next call (synthesis sets it per source
    /// process/net); name_node records an exact net-name alias for a node
    /// (first writer wins, so a CSE-shared node keeps its original name).
    void set_source(const std::string& label);
    void name_node(uint32_t node, const std::string& name);
    /// @}

    uint32_t width_of(uint32_t n) const { return nl_->nodes[n].width; }
    bool is_const(uint32_t n) const
    {
        return nl_->nodes[n].op == Op::Const;
    }
    const BitVector& const_val(uint32_t n) const
    {
        return nl_->nodes[n].cval;
    }

  private:
    /// Attempts to fold \p node; returns the folded constant id or ~0.
    uint32_t try_fold(const Node& node);
    uint32_t intern(Node node);

    /// Tags nodes appended since the last bookkeeping pass with the
    /// current source label (cheap: called from every append site).
    void tag_new_nodes();

    Netlist* nl_;
    std::unordered_map<uint64_t, std::vector<uint32_t>> cse_;
    std::unordered_map<std::string, uint32_t> src_index_;
    uint32_t current_src_ = 0;
};

/// Evaluates a single node given already-evaluated argument values; shared
/// by the constant folder and the bitstream evaluator so their semantics
/// cannot diverge.
BitVector eval_node(const Node& node, const std::vector<BitVector>& argv);

} // namespace cascade::fpga

#endif // CASCADE_FPGA_NETLIST_H
