/// \file
/// Tests for the REPL meta-commands: :stats (table and JSON), :trace,
/// :probe/:unprobe/:vcd, :help, and the error paths (missing arguments,
/// unknown signals, unknown commands). These are the golden-output tests
/// for the observability surface a user actually sees.

#include "runtime/repl.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "hypervisor/fabric_manager.h"
#include "runtime/runtime.h"
#include "service/compile_service.h"
#include "telemetry/sync.h"

namespace cascade::runtime {
namespace {

class ReplHarness {
  public:
    ReplHarness()
        : runtime_(options()), repl_(&runtime_, &out_)
    {
    }

    static Runtime::Options
    options()
    {
        Runtime::Options opts;
        opts.enable_hardware = false;
        return opts;
    }

    /// Feeds one line (newline appended) and returns the output it caused.
    std::string
    command(const std::string& line)
    {
        out_.str("");
        repl_.feed(line + "\n");
        return out_.str();
    }

    Runtime& runtime() { return runtime_; }

  private:
    Runtime runtime_;
    std::ostringstream out_;
    Repl repl_;
};

std::string
temp_path(const std::string& name)
{
    return testing::TempDir() + name;
}

TEST(ReplMeta, StatsTableGolden)
{
    ReplHarness h;
    h.command("reg [3:0] r = 0; always @(posedge clk.val) r <= r + 1;");
    h.runtime().run_for_ticks(3);
    const std::string out = h.command(":stats");
    // Stable skeleton of the table (values vary, structure must not).
    EXPECT_NE(out.find("cascade stats"), std::string::npos) << out;
    EXPECT_NE(out.find("location"), std::string::npos);
    EXPECT_NE(out.find("Software"), std::string::npos);
    EXPECT_NE(out.find("virtual ticks"), std::string::npos);
    EXPECT_NE(out.find("runtime metrics"), std::string::npos);
    EXPECT_NE(out.find("process metrics"), std::string::npos);
    EXPECT_NE(out.find("scheduler.iterations"), std::string::npos);
    EXPECT_NE(out.find("repl.evals_accepted"), std::string::npos);
}

TEST(ReplMeta, StatsJsonIsParseableAndStable)
{
    ReplHarness h;
    h.command("reg [3:0] r = 0; always @(posedge clk.val) r <= r + 1;");
    h.runtime().run_for_ticks(2);
    const std::string out = h.command(":stats json");
    // Minimal structural JSON validation: balanced braces/brackets
    // outside strings, and a trailing newline.
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (const char c : out) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (in_string) {
            if (c == '\\') {
                escaped = true;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            --depth;
            ASSERT_GE(depth, 0) << out;
        }
    }
    EXPECT_EQ(depth, 0) << out;
    EXPECT_FALSE(in_string);
    // Schema marker and the key sections consumers rely on.
    EXPECT_NE(out.find("\"schema\":\"cascade.stats.v1\""),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("\"metrics\""), std::string::npos);
    EXPECT_NE(out.find("\"process_metrics\""), std::string::npos);
    EXPECT_NE(out.find("\"location\":\"Software\""), std::string::npos);
}

TEST(ReplMeta, TraceWritesChromeJson)
{
    const std::string path = temp_path("repl_trace.json");
    std::remove(path.c_str());
    ReplHarness h;
    h.command("reg r = 0; always @(posedge clk.val) r <= ~r;");
    h.runtime().run_for_ticks(2);
    const std::string out = h.command(":trace " + path);
    EXPECT_NE(out.find("trace written to " + path), std::string::npos)
        << out;
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("traceEvents"), std::string::npos);
}

TEST(ReplMeta, TraceWithoutArgPrintsUsage)
{
    ReplHarness h;
    EXPECT_EQ(h.command(":trace"), "usage: :trace <file>\n");
}

TEST(ReplMeta, ProbeLifecycleAndErrors)
{
    ReplHarness h;
    EXPECT_EQ(h.command(":probe"), "usage: :probe <signal>\n");
    EXPECT_EQ(h.command(":unprobe"), "usage: :unprobe <signal>\n");
    EXPECT_EQ(h.command(":vcd"), "usage: :vcd <file>\n");

    const std::string bad = h.command(":probe bogus");
    EXPECT_NE(bad.find("cannot probe bogus"), std::string::npos) << bad;
    EXPECT_NE(bad.find("unknown signal"), std::string::npos) << bad;

    h.command("reg [7:0] cnt = 0; always @(posedge clk.val) "
              "cnt <= cnt + 1;");
    EXPECT_EQ(h.command(":probe cnt"), "probing cnt\n");
    ASSERT_EQ(h.runtime().probes().size(), 1u);
    EXPECT_EQ(h.command(":unprobe cnt"), "unprobed cnt\n");
    EXPECT_EQ(h.command(":unprobe cnt"), "no probe on cnt\n");
}

TEST(ReplMeta, VcdStartsCapture)
{
    const std::string path = temp_path("repl_capture.vcd");
    ReplHarness h;
    h.command("reg [7:0] cnt = 0; always @(posedge clk.val) "
              "cnt <= cnt + 1;");
    EXPECT_EQ(h.command(":probe cnt"), "probing cnt\n");
    const std::string out = h.command(":vcd " + path);
    EXPECT_NE(out.find("vcd capture to " + path), std::string::npos) << out;
    EXPECT_TRUE(h.runtime().vcd_active());
    h.runtime().run_for_ticks(3);
    h.runtime().close_vcd();
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("$enddefinitions $end"), std::string::npos);
    EXPECT_NE(ss.str().find("cnt"), std::string::npos);
}

TEST(ReplMeta, HelpListsEveryCommand)
{
    ReplHarness h;
    const std::string out = h.command(":help");
    // The complete meta-command vocabulary: every command and spelled-out
    // subcommand the dispatcher accepts must appear in :help. A new
    // command without a help line fails here.
    for (const char* cmd :
         {":stats", ":stats json", ":stats reset", ":profile",
          ":profile json", ":profile on|off", ":profile flame", ":fabric",
          ":top", ":requests", ":requests json", ":why <id>",
          ":contention", ":contention json", ":contention reset",
          ":monitor <port>", ":monitor off", ":slo", ":slo json",
          ":trace", ":probe", ":unprobe", ":vcd",
          ":break <sig> <op> <val>", ":watch <signal>", ":delete <id>",
          ":debug", ":step [n]", ":continue", ":peek <signal>",
          ":record", ":record stop", ":replay", ":help"}) {
        EXPECT_NE(out.find(cmd), std::string::npos)
            << "missing " << cmd << " in:\n" << out;
    }
}

TEST(ReplMeta, UnknownCommandSuggestsHelp)
{
    ReplHarness h;
    const std::string out = h.command(":frobnicate");
    EXPECT_NE(out.find("unknown command ':frobnicate'"), std::string::npos)
        << out;
    EXPECT_NE(out.find(":help"), std::string::npos);
}

TEST(ReplMeta, ProfileTableListsUserProcesses)
{
    ReplHarness h;
    h.command("reg [3:0] r = 0; always @(posedge clk.val) r <= r + 1;");
    h.runtime().run_for_ticks(4);
    const std::string out = h.command(":profile");
    EXPECT_NE(out.find("cascade profile"), std::string::npos) << out;
    EXPECT_NE(out.find("timing off"), std::string::npos) << out;
    EXPECT_NE(out.find("seq"), std::string::npos) << out;
    EXPECT_NE(out.find("r <= (r + 1)"), std::string::npos) << out;

    const std::string on = h.command(":profile on");
    EXPECT_NE(on.find("profiling on"), std::string::npos) << on;
    h.runtime().run_for_ticks(4);
    EXPECT_NE(h.command(":profile").find("timing on"), std::string::npos);
}

TEST(ReplMeta, ProfileJsonIsWellFormed)
{
    ReplHarness h;
    h.command("reg [3:0] r = 0; always @(posedge clk.val) r <= r + 1;");
    h.runtime().run_for_ticks(2);
    const std::string out = h.command(":profile json");
    EXPECT_NE(out.find("\"schema\":\"cascade.profile.v1\""),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("\"sw_triggers\":"), std::string::npos);
    EXPECT_NE(out.find("\"hw_triggers\":"), std::string::npos);
    EXPECT_NE(out.find("\"eval_ns\":"), std::string::npos);
}

TEST(ReplMeta, ProfileFlameWritesCollapsedStacks)
{
    ReplHarness h;
    h.command("reg [3:0] r = 0; always @(posedge clk.val) r <= r + 1;");
    h.runtime().run_for_ticks(4);
    EXPECT_NE(h.command(":profile flame").find("usage:"),
              std::string::npos);
    const std::string path = temp_path("repl_flame.folded");
    const std::string out = h.command(":profile flame " + path);
    EXPECT_NE(out.find("collapsed stacks written"), std::string::npos)
        << out;
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line)) << "flamegraph file is empty";
    // "frames... weight": the weight is a positive integer, frames are
    // ';'-separated with the instance first.
    EXPECT_EQ(line.rfind("root;seq;", 0), 0u) << line;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    EXPECT_GT(std::stoull(line.substr(space + 1)), 0u);
}

TEST(ReplMeta, StatsResetZeroesMetrics)
{
    ReplHarness h;
    h.command("reg [3:0] r = 0; always @(posedge clk.val) r <= r + 1;");
    h.runtime().run_for_ticks(3);
    EXPECT_GT(h.runtime().telemetry().counter("clock.toggles")->value(),
              0u);
    const std::string out = h.command(":stats reset");
    EXPECT_NE(out.find("stats reset"), std::string::npos) << out;
    EXPECT_EQ(h.runtime().telemetry().counter("clock.toggles")->value(),
              0u);
    // Counting resumes on the same handles.
    h.runtime().run_for_ticks(1);
    EXPECT_GT(h.runtime().telemetry().counter("clock.toggles")->value(),
              0u);
}

/// Regression: :stats reset used to clear only the two metric
/// registries, leaving the sync registry's sites, the time-series rings,
/// and the SLO breach counters behind — so a "fresh" measurement window
/// still showed stale contention and breach history.
TEST(ReplMeta, StatsResetClearsSyncSitesTimeseriesAndSlo)
{
    ReplHarness h;
    h.command("reg [3:0] r = 0; always @(posedge clk.val) r <= r + 1;");
    h.runtime().run_for_ticks(3);

    // Populate every surface the reset must cover. Sites survive a
    // reset (handles stay valid) but their counters must zero.
    const auto probe_acquisitions = [] {
        for (const auto& s : telemetry::SyncRegistry::global().snapshot()) {
            if (s.name == "repl_test.reset_probe") {
                return s.acquisitions;
            }
        }
        return uint64_t{0};
    };
#if CASCADE_SYNC_TELEMETRY
    telemetry::Mutex mu("repl_test.reset_probe");
    {
        std::lock_guard<telemetry::Mutex> lock(mu);
    }
    ASSERT_GT(probe_acquisitions(), 0u);
#endif
    h.runtime().timeseries().sample("probe", 0.0, 1.0);
    ASSERT_FALSE(h.runtime().timeseries().names().empty());
    h.runtime().slo_tracker().record_cold_compile(0.0, 1.0);

    h.command(":stats reset");
    EXPECT_EQ(probe_acquisitions(), 0u);
    EXPECT_TRUE(h.runtime().timeseries().names().empty());
    EXPECT_EQ(h.runtime().slo_tracker().total_breaches(), 0u);
    const auto status = h.runtime().slo_tracker().evaluate(1.0);
    EXPECT_FALSE(status.breached);
}

TEST(ReplMeta, MonitorCommandLifecycle)
{
    ReplHarness h;
    EXPECT_NE(h.command(":monitor").find("usage: :monitor <port|off>"),
              std::string::npos);
    EXPECT_NE(h.command(":monitor pizza")
                  .find("usage: :monitor <port|off>"),
              std::string::npos);
    EXPECT_NE(h.command(":monitor off").find("monitor is not running"),
              std::string::npos);

    const std::string started = h.command(":monitor 0");
    EXPECT_NE(started.find("monitoring on 127.0.0.1:"),
              std::string::npos)
        << started;
    EXPECT_TRUE(h.runtime().monitoring());
    // Status query while running reports the bound port.
    EXPECT_NE(h.command(":monitor").find("monitoring on 127.0.0.1:"),
              std::string::npos);
    EXPECT_NE(h.command(":monitor off").find("monitor stopped"),
              std::string::npos);
    EXPECT_FALSE(h.runtime().monitoring());
}

TEST(ReplMeta, SloTableAndJson)
{
    ReplHarness h;
    EXPECT_NE(h.command(":slo").find("no SLO thresholds configured"),
              std::string::npos);
    const std::string json = h.command(":slo json");
    EXPECT_NE(json.find("\"schema\":\"cascade.slo.v1\""),
              std::string::npos)
        << json;
}

TEST(ReplMeta, FabricReportsSoftwareWithoutACompile)
{
    ReplHarness h;
    h.command("reg [3:0] r = 0; always @(posedge clk.val) r <= r + 1;");
    const std::string out = h.command(":fabric");
    EXPECT_NE(out.find("cascade fabric"), std::string::npos) << out;
    EXPECT_NE(out.find("no hardware compile"), std::string::npos) << out;
}

TEST(ReplMeta, TopReportsExclusiveSessionWithoutHypervisor)
{
    ReplHarness h;
    h.command("reg [3:0] r = 0; always @(posedge clk.val) r <= r + 1;");
    h.runtime().run_for_ticks(3);
    const std::string out = h.command(":top");
    EXPECT_NE(out.find("exclusive session (no hypervisor)"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("ticks"), std::string::npos);
}

TEST(ReplMeta, RequestsTableAndWhyDecomposition)
{
    ReplHarness h;
    h.command("reg [3:0] r = 0; always @(posedge clk.val) r <= r + 1;");
    h.runtime().run_for_ticks(3);

    const std::string table = h.command(":requests");
    EXPECT_NE(table.find("id  kind"), std::string::npos) << table;
    EXPECT_NE(table.find("eval"), std::string::npos) << table;
    EXPECT_NE(table.find(":why <id>"), std::string::npos);

    const std::string json = h.command(":requests json");
    EXPECT_NE(json.find("\"schema\":\"cascade.requests.v1\""),
              std::string::npos)
        << json;

    // :why on a real eval request decomposes it; the id is the journal
    // seq, recoverable from the tracker.
    uint64_t id = 0;
    for (const auto& r : h.runtime().request_tracker().recent()) {
        if (std::string(r.kind) == "eval") {
            id = r.id;
        }
    }
    ASSERT_NE(id, 0u);
    const std::string why = h.command(":why " + std::to_string(id));
    EXPECT_NE(why.find("request " + std::to_string(id)),
              std::string::npos)
        << why;
    EXPECT_NE(why.find("end-to-end"), std::string::npos);
    EXPECT_NE(why.find("segments sum"), std::string::npos);

    EXPECT_NE(h.command(":why").find("usage: :why <request id>"),
              std::string::npos);
    EXPECT_NE(h.command(":why 999999").find("not found"),
              std::string::npos);
}

TEST(ReplMeta, ContentionTableGolden)
{
    ReplHarness h;
    // The harness itself exercises instrumented sites (journal ring,
    // compile-service queue), so the table always has rows.
    h.command("reg [3:0] r = 0; always @(posedge clk.val) r <= r + 1;");
    const std::string out = h.command(":contention");
    EXPECT_NE(out.find("contention by site"), std::string::npos) << out;
    EXPECT_NE(out.find("blocked-on"), std::string::npos) << out;
}

TEST(ReplMeta, ContentionJsonHasSchema)
{
    ReplHarness h;
    const std::string out = h.command(":contention json");
    EXPECT_NE(out.find("\"schema\":\"cascade.contention.v1\""),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("\"sites\":["), std::string::npos);
    EXPECT_NE(out.find("\"blocked_on\":["), std::string::npos);
}

TEST(ReplMeta, ContentionResetAcknowledges)
{
    ReplHarness h;
    const std::string out = h.command(":contention reset");
    EXPECT_NE(out.find("contention stats reset"), std::string::npos)
        << out;
}

TEST(ReplMeta, StatsSurfaceCompileCacheAndQueueDepth)
{
    ReplHarness h;
    const std::string table = h.command(":stats");
    EXPECT_NE(table.find("compile service"), std::string::npos) << table;
    EXPECT_NE(table.find("cache hit rate"), std::string::npos) << table;
    EXPECT_NE(table.find("queue depth"), std::string::npos) << table;
    const std::string json = h.command(":stats json");
    EXPECT_NE(json.find("\"compile_service\":{"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"cache_hits\":"), std::string::npos);
    EXPECT_NE(json.find("\"cache_hit_rate\":"), std::string::npos);
    EXPECT_NE(json.find("\"queue_depth\":"), std::string::npos);
}

TEST(ReplMeta, FabricRendersHypervisorSlotMapInSharedMode)
{
    // A shared-mode runtime extends :fabric with the hypervisor's slot
    // map: one row per tenant with id, LE slice, and residency state.
    service::CompileService svc;
    hypervisor::FabricManager fm;
    Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;
    opts.tenant_name = "repl-tenant";
    Runtime rt(opts, svc, fm);
    std::ostringstream sink;
    Repl repl(&rt, &sink);

    // Before any compile: registered but software-resident.
    repl.feed("reg [3:0] r = 0; always @(posedge clk.val) r <= r + 1;\n");
    sink.str("");
    repl.feed(":fabric\n");
    std::string out = sink.str();
    EXPECT_NE(out.find("cascade fabric"), std::string::npos) << out;
    EXPECT_NE(out.find("hypervisor slots"), std::string::npos) << out;
    EXPECT_NE(out.find("repl-tenant"), std::string::npos) << out;
    EXPECT_NE(out.find("software"), std::string::npos) << out;
    EXPECT_NE(out.find("LE -"), std::string::npos) << out;

    // After adoption: resident, with a concrete LE slice.
    ASSERT_TRUE(rt.wait_for_hardware(60.0));
    sink.str("");
    repl.feed(":fabric\n");
    out = sink.str();
    EXPECT_NE(out.find("repl-tenant"), std::string::npos) << out;
    EXPECT_NE(out.find("resident"), std::string::npos) << out;
    EXPECT_NE(out.find("LE [0, "), std::string::npos) << out;
    EXPECT_EQ(out.find("software"), std::string::npos) << out;
}

TEST(ReplMeta, TopRendersFleetViewInSharedMode)
{
    service::CompileService svc;
    hypervisor::FabricManager fm;
    Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;
    opts.tenant_name = "top-tenant";
    Runtime rt(opts, svc, fm);
    std::ostringstream sink;
    Repl repl(&rt, &sink);

    repl.feed("reg [3:0] r = 0; always @(posedge clk.val) r <= r + 1;\n");
    ASSERT_TRUE(rt.wait_for_hardware(60.0));
    rt.run_for_ticks(32);
    sink.str("");
    repl.feed(":top\n");
    const std::string out = sink.str();
    EXPECT_NE(out.find("fleet ("), std::string::npos) << out;
    EXPECT_NE(out.find("top-tenant"), std::string::npos) << out;
    EXPECT_NE(out.find("resident"), std::string::npos) << out;
    EXPECT_NE(out.find("ticks/s"), std::string::npos) << out;
    EXPECT_NE(out.find("wait%"), std::string::npos) << out;
}

} // namespace
} // namespace cascade::runtime
