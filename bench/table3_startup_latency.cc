/// \file
/// Table 3 (paper §1/§6 prose): time from initiating compilation to
/// running code. The paper's headline: "Cascade reduces the time between
/// initiating compilation and running code to less than a second", versus
/// ~10 minutes for Quartus on the proof-of-work design. Both the software
/// baseline and Cascade must start in under a second regardless of design
/// size; the direct toolchain grows with size.
///
/// Output: one row per (workload, toolchain): seconds to first execution.
/// Like fig11/fig12, the bench also writes telemetry sidecars next to
/// wherever it is invoked from: table3_startup_latency.stats.json (one
/// stats_json() snapshot per cascade run, keyed by workload),
/// table3_startup_latency.trace.json (Chrome trace_event spans), and a
/// headline result file (BENCH_table3_startup_latency.json: the latency
/// matrix CI's smoke-bench job uploads and diffs).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "fpga/compile.h"
#include "runtime/runtime.h"
#include "telemetry/trace.h"
#include "verilog/parser.h"
#include "workloads/workloads.h"

using cascade::runtime::Runtime;

namespace {

double
time_eval_to_running(Runtime::Options options, const std::string& src,
                     std::string* stats_json = nullptr)
{
    Runtime rt(options);
    rt.on_output = [](const std::string&) {};
    const auto t0 = std::chrono::steady_clock::now();
    std::string errors;
    if (!rt.eval(src, &errors)) {
        std::fprintf(stderr, "eval failed: %s\n", errors.c_str());
        return -1;
    }
    rt.run_for_ticks(2); // code demonstrably executing
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    if (stats_json != nullptr) {
        *stats_json = rt.stats_json();
    }
    return elapsed;
}

double
time_direct_compile(const std::string& module_src)
{
    cascade::Diagnostics diags;
    auto unit = cascade::verilog::parse(module_src, &diags);
    cascade::verilog::Elaborator elab(&diags);
    auto em = elab.elaborate(*unit.modules[0]);
    if (em == nullptr) {
        std::fprintf(stderr, "elab failed: %s\n", diags.str().c_str());
        return -1;
    }
    cascade::fpga::CompileOptions opts;
    opts.effort = 1.0;
    const auto t0 = std::chrono::steady_clock::now();
    auto result = cascade::fpga::compile(*em, opts);
    (void)result;
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main()
{
    std::printf("Table 3: seconds from initiating compilation to running "
                "code\n");
    std::printf("%-16s %12s %12s %12s\n", "workload", "sw-sim",
                "cascade", "direct");

    struct Case {
        const char* name;
        std::string repl_src;
        std::string module_src;
    };
    const Case cases[] = {
        {"proof_of_work",
         cascade::workloads::proof_of_work_source(16, false),
         cascade::workloads::proof_of_work_module(16)},
        {"regex_stream", cascade::workloads::regex_stream_source(false),
         cascade::workloads::regex_stream_module()},
        {"nw_16", cascade::workloads::needleman_wunsch_source(16, 0),
         // NW has no standalone-module variant; reuse regex for the
         // direct column's third size point.
         cascade::workloads::regex_stream_module()},
    };
    std::string sidecar_body;
    std::string results_body;
    for (const Case& c : cases) {
        Runtime::Options sw;
        sw.enable_hardware = false;
        const double t_sw = time_eval_to_running(sw, c.repl_src);
        Runtime::Options jit;
        jit.compile_effort = 1.0;
        std::string stats;
        const double t_cascade =
            time_eval_to_running(jit, c.repl_src, &stats);
        const double t_direct = time_direct_compile(c.module_src);
        std::printf("%-16s %11.3fs %11.3fs %11.2fs\n", c.name, t_sw,
                    t_cascade, t_direct);
        {
            char row[192];
            std::snprintf(row, sizeof row,
                          "\"%s\":{\"sw_seconds\":%.4f,"
                          "\"cascade_seconds\":%.4f,"
                          "\"direct_seconds\":%.4f}",
                          c.name, t_sw, t_cascade, t_direct);
            if (!results_body.empty()) {
                results_body += ',';
            }
            results_body += row;
        }
        if (!stats.empty()) {
            if (!sidecar_body.empty()) {
                sidecar_body += ',';
            }
            sidecar_body += '"';
            sidecar_body += c.name;
            sidecar_body += "\":";
            sidecar_body += stats;
        }
    }
    {
        std::ofstream out("BENCH_table3_startup_latency.json");
        out << "{\"schema\":\"cascade.bench.v1\","
            << "\"bench\":\"table3_startup_latency\",\"workloads\":{"
            << results_body << "}}\n";
        std::fprintf(stderr,
                     "# results -> BENCH_table3_startup_latency.json\n");
    }
    {
        std::ofstream sidecar("table3_startup_latency.stats.json");
        sidecar << '{' << sidecar_body << "}\n";
        std::fprintf(stderr, "# stats sidecar -> "
                             "table3_startup_latency.stats.json\n");
    }
    cascade::telemetry::Tracer::global().write_chrome_json(
        "table3_startup_latency.trace.json");
    std::fprintf(stderr, "# trace -> table3_startup_latency.trace.json\n");
    std::printf("\npaper: Cascade <1 s on every design; Quartus ~600 s "
                "for proof-of-work\n");
    return 0;
}
