#include "telemetry/request_trace.h"

#include <algorithm>
#include <cstdio>

namespace cascade::telemetry {

namespace {

/// One request as a JSON object (shared by json() and ndjson()).
std::string
request_json(const RequestRecord& r)
{
    char buf[128];
    std::string out = "{\"id\":" + std::to_string(r.id) + ",\"kind\":\"" +
                      r.kind + "\",\"version\":" +
                      std::to_string(r.version) +
                      ",\"tenant\":" + std::to_string(r.tenant);
    out += ",\"done\":";
    out += r.done ? "true" : "false";
    out += ",\"ok\":";
    out += r.ok ? "true" : "false";
    out += ",\"cache_hit\":";
    out += r.cache_hit ? "true" : "false";
    std::snprintf(buf, sizeof buf, ",\"start_us\":%.3f,\"total_us\":%.3f",
                  r.start_us, r.done ? r.total_us() : 0.0);
    out += buf;
    out += ",\"segments\":[";
    for (size_t i = 0; i < r.segments.size(); ++i) {
        if (i != 0) {
            out += ',';
        }
        std::snprintf(buf, sizeof buf, "{\"name\":\"%s\",\"us\":%.3f}",
                      r.segments[i].name, r.segments[i].dur_us);
        out += buf;
    }
    out += "]}";
    return out;
}

} // namespace

double
RequestRecord::segment_sum_us() const
{
    double sum = 0;
    for (const RequestSegment& s : segments) {
        sum += s.dur_us;
    }
    return sum;
}

RequestTracker::RequestTracker(Registry* registry, size_t capacity)
    : registry_(registry), ring_(capacity == 0 ? 1 : capacity)
{}

RequestRecord*
RequestTracker::find_open_locked(uint64_t id)
{
    for (RequestRecord& r : open_) {
        if (r.id == id) {
            return &r;
        }
    }
    return nullptr;
}

void
RequestTracker::begin(uint64_t id, const char* kind, uint64_t version,
                      uint64_t tenant, double start_us)
{
    std::lock_guard<std::mutex> lock(mutex_);
    RequestRecord r;
    r.id = id;
    r.kind = kind;
    r.version = version;
    r.tenant = tenant;
    r.start_us = start_us;
    open_.push_back(std::move(r));
}

void
RequestTracker::add_segment(uint64_t id, const char* name, double dur_us)
{
    std::lock_guard<std::mutex> lock(mutex_);
    RequestRecord* r = find_open_locked(id);
    if (r != nullptr) {
        r->segments.push_back({name, dur_us});
    }
}

void
RequestTracker::annotate_cache(uint64_t id, bool hit)
{
    std::lock_guard<std::mutex> lock(mutex_);
    RequestRecord* r = find_open_locked(id);
    if (r != nullptr) {
        r->cache_hit = hit;
    }
}

void
RequestTracker::retire_locked(RequestRecord record)
{
    if (ring_count_ == ring_.size()) {
        // Full: overwrite the oldest.
    } else {
        ++ring_count_;
    }
    ring_[ring_next_] = std::move(record);
    ring_next_ = (ring_next_ + 1) % ring_.size();
    ++completed_;
}

void
RequestTracker::feed_histograms(const RequestRecord& record)
{
    if (registry_ == nullptr) {
        return;
    }
    const auto record_ns = [&](const std::string& name, double us) {
        Histogram*& h = histograms_[name];
        if (h == nullptr) {
            h = registry_->histogram(name);
        }
        h->record(static_cast<uint64_t>(std::max(0.0, us) * 1000.0));
    };
    for (const RequestSegment& s : record.segments) {
        record_ns(std::string("request.") + s.name + "_ns", s.dur_us);
    }
    record_ns("request.total_ns", record.total_us());
}

bool
RequestTracker::end(uint64_t id, bool ok, double end_us)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it =
        std::find_if(open_.begin(), open_.end(),
                     [id](const RequestRecord& r) { return r.id == id; });
    if (it == open_.end()) {
        return false;
    }
    RequestRecord finished = std::move(*it);
    open_.erase(it);
    finished.done = true;
    finished.ok = ok;
    finished.end_us = end_us;
    feed_histograms(finished);
    retire_locked(std::move(finished));
    return true;
}

void
RequestTracker::complete(uint64_t id, const char* kind, uint64_t version,
                         uint64_t tenant, double start_us, double end_us,
                         const char* segment, bool ok)
{
    begin(id, kind, version, tenant, start_us);
    add_segment(id, segment, end_us - start_us);
    end(id, ok, end_us);
}

std::vector<RequestRecord>
RequestTracker::recent() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RequestRecord> out;
    out.reserve(ring_count_);
    const size_t start = ring_count_ == ring_.size()
                             ? ring_next_
                             : (ring_next_ + ring_.size() - ring_count_) %
                                   ring_.size();
    for (size_t i = 0; i < ring_count_; ++i) {
        out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
}

bool
RequestTracker::find(uint64_t id, RequestRecord* out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const RequestRecord& r : open_) {
        if (r.id == id) {
            *out = r;
            return true;
        }
    }
    for (size_t i = 0; i < ring_count_; ++i) {
        if (ring_[i].id == id) {
            *out = ring_[i];
            return true;
        }
    }
    return false;
}

size_t
RequestTracker::open_count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return open_.size();
}

uint64_t
RequestTracker::completed_total() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
}

std::string
RequestTracker::json() const
{
    std::string out = "{\"schema\":\"cascade.requests.v1\"";
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out += ",\"completed\":" + std::to_string(completed_) +
               ",\"open\":" + std::to_string(open_.size());
    }
    out += ",\"requests\":[";
    bool first = true;
    for (const RequestRecord& r : recent()) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += request_json(r);
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const RequestRecord& r : open_) {
            if (!first) {
                out += ',';
            }
            first = false;
            out += request_json(r);
        }
    }
    out += "]}\n";
    return out;
}

std::string
RequestTracker::ndjson() const
{
    std::string out;
    for (const RequestRecord& r : recent()) {
        out += request_json(r);
        out += '\n';
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (const RequestRecord& r : open_) {
        out += request_json(r);
        out += '\n';
    }
    return out;
}

std::string
RequestTracker::table() const
{
    const std::vector<RequestRecord> finished = recent();
    std::vector<RequestRecord> open;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        open = open_;
    }
    std::string out = "      id  kind       ver  ok   cache  total_ms"
                      "  slowest segment\n";
    char buf[160];
    const auto row = [&](const RequestRecord& r) {
        const RequestSegment* hot = nullptr;
        for (const RequestSegment& s : r.segments) {
            if (hot == nullptr || s.dur_us > hot->dur_us) {
                hot = &s;
            }
        }
        const double total = r.done ? r.total_us() : 0.0;
        std::string slowest = "-";
        if (hot != nullptr && total > 0) {
            std::snprintf(buf, sizeof buf, "%s %.0f%%", hot->name,
                          100.0 * hot->dur_us / total);
            slowest = buf;
        }
        std::snprintf(buf, sizeof buf,
                      "%8llu  %-9s %4llu  %-4s %-6s %9.3f  %s\n",
                      static_cast<unsigned long long>(r.id), r.kind,
                      static_cast<unsigned long long>(r.version),
                      !r.done ? "..." : (r.ok ? "yes" : "no"),
                      r.cache_hit ? "hit" : "miss", total / 1000.0,
                      r.done ? slowest.c_str() : "(in flight)");
        out += buf;
    };
    for (const RequestRecord& r : finished) {
        row(r);
    }
    for (const RequestRecord& r : open) {
        row(r);
    }
    out += "(:why <id> decomposes one request; ids are journal seqs)\n";
    return out;
}

std::string
RequestTracker::why(uint64_t id) const
{
    RequestRecord r;
    if (!find(id, &r)) {
        return "request " + std::to_string(id) +
               " not found (the tracker keeps the most recent " +
               std::to_string(ring_.size()) + " finished requests)\n";
    }
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "request %llu (%s v%llu, tenant %llu): %s, cache %s\n",
                  static_cast<unsigned long long>(r.id), r.kind,
                  static_cast<unsigned long long>(r.version),
                  static_cast<unsigned long long>(r.tenant),
                  !r.done ? "in flight" : (r.ok ? "ok" : "failed"),
                  r.cache_hit ? "hit" : "miss");
    std::string out = buf;
    if (!r.done) {
        out += "  (still open; segments so far)\n";
    }
    const double total = r.done ? r.total_us() : r.segment_sum_us();
    std::snprintf(buf, sizeof buf, "  end-to-end   %12.3f ms\n",
                  total / 1000.0);
    out += buf;
    for (const RequestSegment& s : r.segments) {
        std::snprintf(buf, sizeof buf, "    %-10s %12.3f ms %5.1f%%\n",
                      s.name, s.dur_us / 1000.0,
                      total > 0 ? 100.0 * s.dur_us / total : 0.0);
        out += buf;
    }
    const double sum = r.segment_sum_us();
    std::snprintf(buf, sizeof buf,
                  "  segments sum %12.3f ms (%.1f%% of end-to-end)\n",
                  sum / 1000.0, total > 0 ? 100.0 * sum / total : 0.0);
    out += buf;
    return out;
}

} // namespace cascade::telemetry
