#include "telemetry/sync.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "telemetry/trace.h"

namespace cascade::telemetry {

namespace {

thread_local uint64_t tls_tenant = 0;

/// Contended waits shorter than this are counted but not traced; keeps
/// the ring buffer for stalls a human would care about on a swimlane.
constexpr uint64_t kBlockedSpanNs = 10'000;

std::string
ns_pretty(uint64_t ns)
{
    char buf[32];
    if (ns >= 1'000'000'000ull) {
        std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
    } else if (ns >= 1'000'000ull) {
        std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
    } else if (ns >= 1'000ull) {
        std::snprintf(buf, sizeof buf, "%.1fus", ns / 1e3);
    } else {
        std::snprintf(buf, sizeof buf, "%" PRIu64 "ns", ns);
    }
    return buf;
}

} // namespace

void
set_thread_tenant(uint64_t tenant)
{
    tls_tenant = tenant;
}

uint64_t
thread_tenant()
{
    return tls_tenant;
}

uint64_t
sync_now_ns()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

SyncSite::SyncSite(std::string name, const char* kind)
    : name_(std::move(name)), kind_(kind), blocked_name_("blocked:" + name_)
{
}

void
SyncSite::reset()
{
    acquisitions.reset();
    contended.reset();
    wait_ns.reset();
    hold_ns.reset();
    tenant_wait_ns.store(0, std::memory_order_relaxed);
}

SyncRegistry&
SyncRegistry::global()
{
    static SyncRegistry* instance = new SyncRegistry();
    return *instance;
}

SyncSite*
SyncRegistry::site(const std::string& name, const char* kind)
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::unique_ptr<SyncSite>& slot = sites_[name];
    if (slot == nullptr) {
        slot = std::make_unique<SyncSite>(name, kind);
    }
    return slot.get();
}

void
SyncRegistry::record_blocked(const SyncSite& site, uint64_t waiter,
                             uint64_t holder, uint64_t wait_ns)
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::pair<uint64_t, uint64_t>& cell =
        edges_[site.name()][{waiter, holder}];
    cell.first += 1;
    cell.second += wait_ns;
    tenant_wait_[waiter] += wait_ns;
}

std::vector<SyncRegistry::SiteSnapshot>
SyncRegistry::snapshot() const
{
    std::vector<SiteSnapshot> out;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        out.reserve(sites_.size());
        for (const auto& [name, site] : sites_) {
            SiteSnapshot s;
            s.name = name;
            s.kind = site->kind();
            s.acquisitions = site->acquisitions.value();
            s.contended = site->contended.value();
            s.wait_sum_ns = site->wait_ns.sum();
            s.wait_max_ns = site->wait_ns.max();
            s.wait_p50_ns = site->wait_ns.quantile(0.5);
            s.wait_p99_ns = site->wait_ns.quantile(0.99);
            s.hold_sum_ns = site->hold_ns.sum();
            s.hold_max_ns = site->hold_ns.max();
            s.tenant_wait_ns =
                site->tenant_wait_ns.load(std::memory_order_relaxed);
            out.push_back(std::move(s));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const SiteSnapshot& a, const SiteSnapshot& b) {
                  if (a.tenant_wait_ns != b.tenant_wait_ns) {
                      return a.tenant_wait_ns > b.tenant_wait_ns;
                  }
                  if (a.wait_sum_ns != b.wait_sum_ns) {
                      return a.wait_sum_ns > b.wait_sum_ns;
                  }
                  return a.name < b.name;
              });
    return out;
}

std::vector<BlockedEdge>
SyncRegistry::blocked_edges() const
{
    std::vector<BlockedEdge> out;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        for (const auto& [site, cells] : edges_) {
            for (const auto& [who, cell] : cells) {
                BlockedEdge e;
                e.site = site;
                e.waiter = who.first;
                e.holder = who.second;
                e.count = cell.first;
                e.wait_ns = cell.second;
                out.push_back(std::move(e));
            }
        }
    }
    std::sort(out.begin(), out.end(),
              [](const BlockedEdge& a, const BlockedEdge& b) {
                  return a.wait_ns > b.wait_ns;
              });
    return out;
}

std::map<uint64_t, uint64_t>
SyncRegistry::tenant_waits() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return tenant_wait_;
}

std::string
SyncRegistry::contention_json() const
{
    const std::vector<SiteSnapshot> sites = snapshot();
    const std::vector<BlockedEdge> edges = blocked_edges();
    const std::map<uint64_t, uint64_t> waits = tenant_waits();

    std::string out = "{\"schema\":\"cascade.contention.v1\",\"sites\":[";
    bool first = true;
    for (const SiteSnapshot& s : sites) {
        if (!first) {
            out += ",";
        }
        first = false;
        out += "{\"name\":\"" + json_escape(s.name) + "\",\"kind\":\"" +
               json_escape(s.kind) + "\"";
        out += ",\"acquisitions\":" + std::to_string(s.acquisitions);
        out += ",\"contended\":" + std::to_string(s.contended);
        out += ",\"wait_sum_ns\":" + std::to_string(s.wait_sum_ns);
        out += ",\"wait_max_ns\":" + std::to_string(s.wait_max_ns);
        out += ",\"wait_p50_ns\":" + std::to_string(s.wait_p50_ns);
        out += ",\"wait_p99_ns\":" + std::to_string(s.wait_p99_ns);
        out += ",\"hold_sum_ns\":" + std::to_string(s.hold_sum_ns);
        out += ",\"hold_max_ns\":" + std::to_string(s.hold_max_ns);
        out += ",\"tenant_wait_ns\":" + std::to_string(s.tenant_wait_ns);
        out += "}";
    }
    out += "],\"blocked_on\":[";
    first = true;
    for (const BlockedEdge& e : edges) {
        if (!first) {
            out += ",";
        }
        first = false;
        out += "{\"site\":\"" + json_escape(e.site) + "\"";
        out += ",\"waiter\":" + std::to_string(e.waiter);
        out += ",\"holder\":" + std::to_string(e.holder);
        out += ",\"count\":" + std::to_string(e.count);
        out += ",\"wait_ns\":" + std::to_string(e.wait_ns);
        out += "}";
    }
    out += "],\"tenant_wait_ns\":{";
    first = true;
    for (const auto& [tenant, ns] : waits) {
        if (!first) {
            out += ",";
        }
        first = false;
        out += "\"" + std::to_string(tenant) + "\":" + std::to_string(ns);
    }
    out += "}}";
    return out;
}

std::string
SyncRegistry::contention_table() const
{
    const std::vector<SiteSnapshot> sites = snapshot();
    const std::vector<BlockedEdge> edges = blocked_edges();

    char line[256];
    std::string out;
    out += "contention by site (ranked by tenant wait):\n";
    std::snprintf(line, sizeof line, "  %-22s %-5s %10s %10s %10s %10s %10s\n",
                  "site", "kind", "acquired", "contended", "tenant-wait",
                  "total-wait", "max-hold");
    out += line;
    for (const SiteSnapshot& s : sites) {
        std::snprintf(line, sizeof line,
                      "  %-22s %-5s %10" PRIu64 " %10" PRIu64
                      " %10s %10s %10s\n",
                      s.name.c_str(), s.kind.c_str(), s.acquisitions,
                      s.contended, ns_pretty(s.tenant_wait_ns).c_str(),
                      ns_pretty(s.wait_sum_ns).c_str(),
                      ns_pretty(s.hold_max_ns).c_str());
        out += line;
    }
    out += "blocked-on (waiter <- holder):\n";
    if (edges.empty()) {
        out += "  (none)\n";
    }
    for (const BlockedEdge& e : edges) {
        std::snprintf(line, sizeof line,
                      "  tenant %" PRIu64 " waited %s on %s held by tenant "
                      "%" PRIu64 " (%" PRIu64 "x)\n",
                      e.waiter, ns_pretty(e.wait_ns).c_str(), e.site.c_str(),
                      e.holder, e.count);
        out += line;
    }
    return out;
}

void
SyncRegistry::reset()
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (auto& [name, site] : sites_) {
        site->reset();
    }
    edges_.clear();
    tenant_wait_.clear();
}

#if CASCADE_SYNC_TELEMETRY

Mutex::Mutex(const char* site_name)
    : site_(SyncRegistry::global().site(site_name, "mutex"))
{
}

void
Mutex::lock()
{
    if (m_.try_lock()) {
        site_->acquisitions.inc();
        site_->wait_ns.record(0);
        owner_.store(tls_tenant, std::memory_order_relaxed);
        locked_at_ns_ = sync_now_ns();
        return;
    }
    lock_contended();
}

void
Mutex::lock_contended()
{
    // Snapshot the holder before blocking: by the time we acquire, the
    // contended holder is gone. kNoOwner (lost race) reports as 0.
    const uint64_t holder_raw = owner_.load(std::memory_order_relaxed);
    const uint64_t holder = holder_raw == kNoOwner ? 0 : holder_raw;
    const double start_us = Tracer::global().now_us();
    const uint64_t t0 = sync_now_ns();
    m_.lock();
    const uint64_t waited = sync_now_ns() - t0;
    site_->acquisitions.inc();
    site_->contended.inc();
    site_->wait_ns.record(waited);
    if (tls_tenant != 0) {
        site_->tenant_wait_ns.fetch_add(waited, std::memory_order_relaxed);
        SyncRegistry::global().record_blocked(*site_, tls_tenant, holder,
                                              waited);
        if (waited >= kBlockedSpanNs) {
            Tracer::global().record_complete(site_->blocked_span_name(),
                                             start_us, waited / 1e3, 0,
                                             holder);
        }
    }
    owner_.store(tls_tenant, std::memory_order_relaxed);
    locked_at_ns_ = sync_now_ns();
}

bool
Mutex::try_lock()
{
    if (!m_.try_lock()) {
        return false;
    }
    site_->acquisitions.inc();
    site_->wait_ns.record(0);
    owner_.store(tls_tenant, std::memory_order_relaxed);
    locked_at_ns_ = sync_now_ns();
    return true;
}

void
Mutex::unlock()
{
    const uint64_t held = sync_now_ns() - locked_at_ns_;
    owner_.store(kNoOwner, std::memory_order_relaxed);
    m_.unlock();
    site_->hold_ns.record(held);
}

uint64_t
Mutex::owner_tenant() const
{
    const uint64_t raw = owner_.load(std::memory_order_relaxed);
    return raw == kNoOwner ? 0 : raw;
}

CondVar::CondVar(const char* site_name)
    : site_(SyncRegistry::global().site(site_name, "cv"))
{
}

void
CondVar::note_wait(uint64_t waited_ns)
{
    site_->acquisitions.inc();
    site_->wait_ns.record(waited_ns);
    if (waited_ns > 0) {
        site_->contended.inc();
    }
    // CV waits have no single holder; they accrue to the waiter's
    // tenant total (holder 0) so deliberate parking by tenant threads
    // (e.g. blocking on compile completion) still shows up ranked.
    if (tls_tenant != 0 && waited_ns > 0) {
        site_->tenant_wait_ns.fetch_add(waited_ns,
                                        std::memory_order_relaxed);
        SyncRegistry::global().record_blocked(*site_, tls_tenant, 0,
                                              waited_ns);
    }
}

#endif // CASCADE_SYNC_TELEMETRY

} // namespace cascade::telemetry
