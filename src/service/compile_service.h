/// \file
/// The pooled compile service: the process-wide successor of the
/// single-runtime CompileServer that used to live inside runtime.cc. One
/// service instance hosts an N-worker thread pool running fpga::compile
/// jobs for any number of registered clients (Runtimes), a bounded FIFO
/// queue with per-client cancellation (a superseded program version
/// cancels its still-queued compile), and a content-addressed bitstream
/// cache: results are keyed by a digest of the canonical elaborated
/// source, the bound parameter values, the device/target configuration,
/// the annealing effort, and the placement seed. A hit skips
/// synth/techmap/place entirely and returns the cached CompileResult with
/// `CompileReport::cache_hit = true` and zeroed per-phase timings — the
/// dominant REPL pattern (recompiling an unchanged program) becomes
/// near-free.

#ifndef CASCADE_SERVICE_COMPILE_SERVICE_H
#define CASCADE_SERVICE_COMPILE_SERVICE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fpga/compile.h"
#include "telemetry/sync.h"
#include "telemetry/telemetry.h"
#include "verilog/elaborate.h"

namespace cascade::service {

class CompileService {
  public:
    struct Config {
        /// Worker threads. 0 is legal (jobs queue but never run — used by
        /// tests that need deterministic queue/cancellation behavior; the
        /// cache still answers hits synchronously at submit).
        size_t workers = 1;
        /// Bounded FIFO: when full, the oldest queued job is dropped
        /// (counted in compile.queue.dropped).
        size_t queue_capacity = 64;
        bool enable_cache = true;
        /// Cached CompileResults retained (LRU beyond this).
        size_t cache_capacity = 128;
    };

    struct Job {
        uint64_t version = 0;
        std::shared_ptr<const verilog::ElaboratedModule> module;
        fpga::CompileOptions options;
        /// Causal request id (the submitting runtime's journal seq for
        /// the compile.launch event); 0 when the caller doesn't trace.
        /// Echoed back on Done and bound into the worker's trace spans
        /// as a flow step, so a request's spans chain across threads.
        uint64_t request = 0;
    };

    struct Done {
        uint64_t version = 0;
        fpga::CompileResult result;
        uint64_t request = 0; ///< echoed from Job::request
        /// @{ Request-tracing timeline anchors (tracer microseconds):
        /// the service-side boundaries the critical-path analyzer turns
        /// into the cache/queue/flow segments of the request. On a cache
        /// hit dequeue_us == done_us == enqueue_us (answered at submit).
        double cache_us = 0;   ///< cache key digest + lookup duration
        double enqueue_us = 0; ///< queued (after the cache lookup)
        double dequeue_us = 0; ///< a worker popped the job
        double done_us = 0;    ///< result pushed to the done queue
        /// @}
    };

    // Two overloads rather than `Config config = Config()`: a default
    // argument of a nested NSDMI class inside its enclosing class is
    // ill-formed until the class is complete.
    CompileService();
    explicit CompileService(Config config);
    ~CompileService();

    CompileService(const CompileService&) = delete;
    CompileService& operator=(const CompileService&) = delete;

    /// @{ Client registry. Each Runtime registers once; results are
    /// delivered per-client, and unregistering cancels that client's
    /// queued jobs and discards its undelivered results.
    uint64_t register_client();
    void unregister_client(uint64_t client);
    /// @}

    /// Enqueues a compile for \p client. Any job of the same client still
    /// in the queue is cancelled first (a newer program version obsoletes
    /// it). On a cache hit the finished result is delivered immediately
    /// without touching the queue or the workers.
    void submit(uint64_t client, Job job);

    /// Drains and returns every finished compile for \p client.
    std::vector<Done> poll(uint64_t client);

    /// True while \p client has a job queued or running.
    bool busy(uint64_t client) const;

    /// Blocks until a finished compile is available for \p client (true)
    /// or \p timeout_s elapsed / the client has nothing in flight (false).
    /// This is the condition-variable replacement for the old 1 ms
    /// adoption-poll sleep loops.
    bool wait_for_done(uint64_t client, double timeout_s);

    /// Blocks until the queue is empty and no worker is running a job
    /// (benches bracket measurements with this).
    void wait_idle();

    /// @{ Introspection.
    size_t queued_jobs() const;
    size_t cache_entries() const;
    /// Per-instance cache counters (the process-registry counters
    /// aggregate across every service in the process; :stats wants this
    /// service's numbers).
    uint64_t cache_hits() const;
    uint64_t cache_misses() const;
    /// hits / (hits + misses); 0.0 before the first keyed lookup.
    double cache_hit_rate() const;
    /// The content-address of one compile: digest over the canonical
    /// printed elaborated source, bound parameter values, effort, target
    /// clock (the device configuration the flow compiles against), and
    /// placement seed. Exposed for tests.
    static std::string cache_key(const verilog::ElaboratedModule& em,
                                 const fpga::CompileOptions& options);
    /// @}

  private:
    struct Pending {
        uint64_t client = 0;
        Job job;
        std::string key; ///< cache key (empty when caching is off)
        uint64_t tenant = 0;   ///< submitting thread's tenant (lanes)
        double enqueue_us = 0; ///< tracer time at submit (queue span)
        double cache_us = 0;   ///< cache lookup duration at submit
    };

    void worker_loop();
    bool inflight_locked(uint64_t client) const;
    void cache_insert_locked(const std::string& key,
                             const fpga::CompileResult& result);

    const Config config_;

    mutable telemetry::Mutex mutex_{"service.queue"};
    telemetry::CondVar work_cv_{
        "service.work_cv"}; ///< workers wait for queue items
    telemetry::CondVar done_cv_{
        "service.done_cv"}; ///< clients wait for results
    bool stop_ = false;
    uint64_t next_client_ = 0;
    std::set<uint64_t> clients_;
    std::deque<Pending> queue_;
    std::map<uint64_t, size_t> running_;            ///< client -> jobs
    std::map<uint64_t, std::vector<Done>> done_;    ///< client -> results
    std::map<std::string, fpga::CompileResult> cache_;
    std::list<std::string> cache_lru_; ///< front = most recently used
    std::vector<std::thread> workers_;

    /// Process-registry metrics (telemetry::Registry::global()): pointers
    /// are stable for the registry's lifetime.
    telemetry::Counter* hits_ = nullptr;
    telemetry::Counter* misses_ = nullptr;
    telemetry::Counter* cancelled_ = nullptr;
    telemetry::Counter* dropped_ = nullptr;
    telemetry::Gauge* depth_ = nullptr;

    /// This service's own hit/miss tally (guarded by mutex_).
    uint64_t local_hits_ = 0;
    uint64_t local_misses_ = 0;
};

} // namespace cascade::service

#endif // CASCADE_SERVICE_COMPILE_SERVICE_H
