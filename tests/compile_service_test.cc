/// \file
/// Tests for the pooled compile service: the content-addressed bitstream
/// cache (a warm hit is byte-identical to the cold miss that populated it,
/// with the hit bit set and the flow timings zeroed; any change to the
/// device configuration or placement seed misses), per-client cancellation
/// of superseded jobs, the bounded queue, multi-worker completion, and the
/// cache/queue metrics surfaced through the process telemetry registry.

#include "service/compile_service.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/telemetry.h"
#include "verilog/parser.h"

namespace cascade::service {
namespace {

using namespace verilog;

std::shared_ptr<const ElaboratedModule>
elaborate_src(std::string_view src)
{
    Diagnostics diags;
    SourceUnit unit = parse(src, &diags);
    EXPECT_FALSE(diags.has_errors()) << diags.str();
    Elaborator elab(&diags);
    auto em = elab.elaborate(*unit.modules[0]);
    EXPECT_NE(em, nullptr) << diags.str();
    return std::shared_ptr<const ElaboratedModule>(std::move(em));
}

std::shared_ptr<const ElaboratedModule>
counter_module()
{
    return elaborate_src(R"(
        module C(input wire clk, output wire [15:0] q);
          reg [15:0] cnt = 0;
          always @(posedge clk) cnt <= cnt + 1;
          assign q = cnt;
        endmodule
    )");
}

fpga::CompileOptions
fast_options(uint64_t seed = 7)
{
    fpga::CompileOptions o;
    o.effort = 0.05;
    o.target_clock_mhz = 50.0;
    o.seed = seed;
    return o;
}

CompileService::Job
job_for(uint64_t version,
        std::shared_ptr<const ElaboratedModule> em,
        const fpga::CompileOptions& options)
{
    CompileService::Job j;
    j.version = version;
    j.module = std::move(em);
    j.options = options;
    return j;
}

/// Drains until exactly one Done arrives (worker completions are async).
CompileService::Done
wait_one(CompileService& svc, uint64_t client)
{
    std::vector<CompileService::Done> out;
    for (int i = 0; i < 400 && out.empty(); ++i) {
        svc.wait_for_done(client, 0.25);
        out = svc.poll(client);
    }
    EXPECT_EQ(out.size(), 1u);
    return out.empty() ? CompileService::Done() : std::move(out[0]);
}

// ---------------------------------------------------------------------
// The content-addressed cache
// ---------------------------------------------------------------------

TEST(CompileCache, WarmHitIsByteIdenticalWithZeroPhaseTimes)
{
    CompileService svc;
    const uint64_t client = svc.register_client();
    auto em = counter_module();

    svc.submit(client, job_for(1, em, fast_options()));
    const CompileService::Done cold = wait_one(svc, client);
    ASSERT_TRUE(cold.result.ok) << cold.result.error;
    EXPECT_FALSE(cold.result.report.cache_hit);
    EXPECT_GT(cold.result.report.total_seconds, 0.0);
    EXPECT_EQ(svc.cache_entries(), 1u);

    svc.submit(client, job_for(2, em, fast_options()));
    const CompileService::Done warm = wait_one(svc, client);
    ASSERT_TRUE(warm.result.ok) << warm.result.error;
    EXPECT_TRUE(warm.result.report.cache_hit);

    // No flow ran: every per-phase time (and the total) is zero.
    EXPECT_EQ(warm.result.report.synth_seconds, 0.0);
    EXPECT_EQ(warm.result.report.techmap_seconds, 0.0);
    EXPECT_EQ(warm.result.report.place_seconds, 0.0);
    EXPECT_EQ(warm.result.report.timing_seconds, 0.0);
    EXPECT_EQ(warm.result.report.total_seconds, 0.0);

    // Everything deterministic is byte-identical to the cold compile —
    // the cached entry even shares the immutable netlist object.
    EXPECT_EQ(warm.result.netlist.get(), cold.result.netlist.get());
    EXPECT_EQ(warm.result.report.seed, cold.result.report.seed);
    EXPECT_EQ(warm.result.report.area.les, cold.result.report.area.les);
    EXPECT_EQ(warm.result.report.area.bram_bits,
              cold.result.report.area.bram_bits);
    EXPECT_EQ(warm.result.report.cells, cold.result.report.cells);
    EXPECT_EQ(warm.result.report.anneal_moves,
              cold.result.report.anneal_moves);
    EXPECT_EQ(warm.result.report.wirelength, cold.result.report.wirelength);
    EXPECT_EQ(warm.result.report.timing.fmax_mhz,
              cold.result.report.timing.fmax_mhz);
    EXPECT_EQ(warm.result.report.critical_path_names,
              cold.result.report.critical_path_names);

    svc.unregister_client(client);
}

TEST(CompileCache, HitRateGettersTrackLocalTraffic)
{
    CompileService svc;
    const uint64_t client = svc.register_client();
    auto em = counter_module();
    EXPECT_EQ(svc.cache_hits(), 0u);
    EXPECT_EQ(svc.cache_misses(), 0u);
    EXPECT_EQ(svc.cache_hit_rate(), 0.0); // no traffic yet

    svc.submit(client, job_for(1, em, fast_options()));
    wait_one(svc, client);
    svc.submit(client, job_for(2, em, fast_options()));
    wait_one(svc, client);

    // Same content twice: one miss populated the cache, one hit reused
    // it. These getters count THIS service's traffic (the process-wide
    // registry counters aggregate across services).
    EXPECT_EQ(svc.cache_misses(), 1u);
    EXPECT_EQ(svc.cache_hits(), 1u);
    EXPECT_DOUBLE_EQ(svc.cache_hit_rate(), 0.5);
    svc.unregister_client(client);
}

TEST(CompileCache, KeyCoversDeviceConfigEffortAndSeed)
{
    auto em = counter_module();
    const std::string base = CompileService::cache_key(*em, fast_options());
    EXPECT_FALSE(base.empty());

    // Same inputs -> same address.
    EXPECT_EQ(base, CompileService::cache_key(*em, fast_options()));

    // A different placement seed, annealing effort, or device target
    // clock is a different compile.
    fpga::CompileOptions seed2 = fast_options(8);
    EXPECT_NE(base, CompileService::cache_key(*em, seed2));
    fpga::CompileOptions effort2 = fast_options();
    effort2.effort = 0.1;
    EXPECT_NE(base, CompileService::cache_key(*em, effort2));
    fpga::CompileOptions clock2 = fast_options();
    clock2.target_clock_mhz = 100.0;
    EXPECT_NE(base, CompileService::cache_key(*em, clock2));

    // And so is a different design.
    auto other = elaborate_src(R"(
        module D(input wire clk, output wire [15:0] q);
          reg [15:0] cnt = 0;
          always @(posedge clk) cnt <= cnt + 2;
          assign q = cnt;
        endmodule
    )");
    EXPECT_NE(base, CompileService::cache_key(*other, fast_options()));
}

TEST(CompileCache, DifferentSeedMissesAndRunsTheFlow)
{
    CompileService svc;
    const uint64_t client = svc.register_client();
    auto em = counter_module();

    svc.submit(client, job_for(1, em, fast_options(7)));
    const CompileService::Done first = wait_one(svc, client);
    ASSERT_TRUE(first.result.ok);

    svc.submit(client, job_for(2, em, fast_options(8)));
    const CompileService::Done second = wait_one(svc, client);
    ASSERT_TRUE(second.result.ok);
    EXPECT_FALSE(second.result.report.cache_hit);
    EXPECT_GT(second.result.report.total_seconds, 0.0);
    EXPECT_EQ(svc.cache_entries(), 2u);

    svc.unregister_client(client);
}

TEST(CompileCache, DisabledCacheAlwaysRunsTheFlow)
{
    CompileService::Config cfg;
    cfg.enable_cache = false;
    CompileService svc(cfg);
    const uint64_t client = svc.register_client();
    auto em = counter_module();

    svc.submit(client, job_for(1, em, fast_options()));
    const CompileService::Done a = wait_one(svc, client);
    svc.submit(client, job_for(2, em, fast_options()));
    const CompileService::Done b = wait_one(svc, client);
    EXPECT_FALSE(a.result.report.cache_hit);
    EXPECT_FALSE(b.result.report.cache_hit);
    EXPECT_EQ(svc.cache_entries(), 0u);

    svc.unregister_client(client);
}

// ---------------------------------------------------------------------
// Queue semantics (workers = 0 keeps jobs queued deterministically)
// ---------------------------------------------------------------------

TEST(CompileQueue, NewerVersionCancelsQueuedJobOfSameClient)
{
    CompileService::Config cfg;
    cfg.workers = 0;
    CompileService svc(cfg);
    const uint64_t a = svc.register_client();
    const uint64_t b = svc.register_client();
    auto em = counter_module();

    svc.submit(a, job_for(1, em, fast_options(1)));
    svc.submit(b, job_for(1, em, fast_options(2)));
    EXPECT_EQ(svc.queued_jobs(), 2u);

    // A newer program version from client a replaces a's queued job but
    // leaves b's untouched.
    svc.submit(a, job_for(2, em, fast_options(3)));
    EXPECT_EQ(svc.queued_jobs(), 2u);
    EXPECT_TRUE(svc.busy(a));
    EXPECT_TRUE(svc.busy(b));

    svc.unregister_client(a);
    EXPECT_EQ(svc.queued_jobs(), 1u);
    EXPECT_FALSE(svc.busy(a));
    svc.unregister_client(b);
    EXPECT_EQ(svc.queued_jobs(), 0u);
}

TEST(CompileQueue, BoundedQueueDropsOldest)
{
    CompileService::Config cfg;
    cfg.workers = 0;
    cfg.queue_capacity = 2;
    cfg.enable_cache = false;
    CompileService svc(cfg);
    auto em = counter_module();
    // Distinct clients so per-client cancellation does not kick in.
    const uint64_t c1 = svc.register_client();
    const uint64_t c2 = svc.register_client();
    const uint64_t c3 = svc.register_client();

    svc.submit(c1, job_for(1, em, fast_options(1)));
    svc.submit(c2, job_for(1, em, fast_options(2)));
    svc.submit(c3, job_for(1, em, fast_options(3)));
    EXPECT_EQ(svc.queued_jobs(), 2u);
    EXPECT_FALSE(svc.busy(c1)); // the oldest was dropped
    EXPECT_TRUE(svc.busy(c2));
    EXPECT_TRUE(svc.busy(c3));
}

TEST(CompileQueue, WaitForDoneReturnsFalseWithNothingInFlight)
{
    CompileService svc;
    const uint64_t client = svc.register_client();
    // Nothing submitted: returns immediately, not after the timeout.
    EXPECT_FALSE(svc.wait_for_done(client, 60.0));
    svc.unregister_client(client);
}

// ---------------------------------------------------------------------
// The worker pool
// ---------------------------------------------------------------------

TEST(CompilePool, MultipleWorkersCompleteAllJobs)
{
    CompileService::Config cfg;
    cfg.workers = 3;
    CompileService svc(cfg);
    auto em = counter_module();

    std::vector<uint64_t> clients;
    for (int i = 0; i < 6; ++i) {
        clients.push_back(svc.register_client());
    }
    for (size_t i = 0; i < clients.size(); ++i) {
        // Same design, distinct seeds: the first six are all misses.
        svc.submit(clients[i],
                   job_for(1, em, fast_options(100 + i)));
    }
    svc.wait_idle();
    for (const uint64_t c : clients) {
        auto out = svc.poll(c);
        ASSERT_EQ(out.size(), 1u);
        EXPECT_TRUE(out[0].result.ok);
        svc.unregister_client(c);
    }
    EXPECT_EQ(svc.cache_entries(), 6u);
}

TEST(CompilePool, ResultsAreIsolatedPerClient)
{
    CompileService svc;
    const uint64_t a = svc.register_client();
    const uint64_t b = svc.register_client();
    auto em = counter_module();

    svc.submit(a, job_for(41, em, fast_options(1)));
    const CompileService::Done da = wait_one(svc, a);
    EXPECT_EQ(da.version, 41u);
    // b never submitted: nothing to poll, and nothing was stolen.
    EXPECT_TRUE(svc.poll(b).empty());

    svc.unregister_client(a);
    svc.unregister_client(b);
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

TEST(CompileMetrics, CacheAndQueueCountersAdvance)
{
    telemetry::Registry& reg = telemetry::Registry::global();
    telemetry::Counter* hits = reg.counter("compile.cache.hits");
    telemetry::Counter* misses = reg.counter("compile.cache.misses");
    telemetry::Gauge* depth = reg.gauge("compile.queue.depth");
    const uint64_t hits0 = hits->value();
    const uint64_t misses0 = misses->value();

    CompileService svc;
    const uint64_t client = svc.register_client();
    auto em = counter_module();

    svc.submit(client, job_for(1, em, fast_options(55)));
    wait_one(svc, client);
    svc.submit(client, job_for(2, em, fast_options(55)));
    wait_one(svc, client);

    EXPECT_EQ(misses->value(), misses0 + 1);
    EXPECT_EQ(hits->value(), hits0 + 1);
    EXPECT_EQ(depth->value(), 0); // drained
    svc.unregister_client(client);
}

} // namespace
} // namespace cascade::service
