/// \file
/// Proof-of-work example (paper §6.1): a SHA-256 miner running under
/// Cascade. Execution starts in under a second in the software engine
/// while the FPGA toolchain compiles in the background; golden nonces are
/// reported with $display both before and after the design migrates to
/// hardware — the property that makes the JIT useful for designs that
/// "change suddenly, say, as the proof of work protocol evolves".

#include <chrono>
#include <cstdio>
#include <string>

#include "runtime/runtime.h"
#include "workloads/workloads.h"

using cascade::runtime::Location;
using cascade::runtime::Runtime;

int
main()
{
    Runtime::Options options;
    options.compile_effort = 0.3;
    // Modest open-loop batches keep the fabric simulation responsive on
    // small hosts; the modeled virtual clock is unaffected.
    options.open_loop_iterations = 2048;
    Runtime rt(options);
    int hits = 0;
    rt.on_output = [&hits](const std::string& text) {
        std::printf("  %s", text.c_str());
        ++hits;
    };

    const uint32_t difficulty_bits = 10; // ~1 hit per 1024 nonces
    std::string errors;
    const auto t0 = std::chrono::steady_clock::now();
    if (!rt.eval(cascade::workloads::proof_of_work_source(difficulty_bits),
                 &errors)) {
        std::fprintf(stderr, "%s", errors.c_str());
        return 1;
    }
    const double startup =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("miner running after %.3f s (difficulty: %u zero bits)\n",
                startup, difficulty_bits);

    std::printf("mining in software while the compiler works...\n");
    const auto start = std::chrono::steady_clock::now();
    uint64_t sw_ticks = 0;
    while (!rt.hardware_ready() &&
           std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
                   .count() < 120.0) {
        rt.run(512);
        sw_ticks = rt.virtual_ticks();
    }
    std::printf("software phase: %llu virtual ticks, %d hits\n",
                static_cast<unsigned long long>(sw_ticks), hits);

    if (rt.hardware_ready()) {
        std::printf("design migrated to hardware; mining continues...\n");
        const uint64_t before = rt.virtual_ticks();
        const double tl0 = rt.timeline_seconds();
        rt.run(256);
        const uint64_t after = rt.virtual_ticks();
        const double tl1 = rt.timeline_seconds();
        std::printf("hardware phase: +%llu ticks in %.4f virtual seconds "
                    "(%.2f MHz virtual clock), %d total hits\n",
                    static_cast<unsigned long long>(after - before),
                    tl1 - tl0,
                    static_cast<double>(after - before) / (tl1 - tl0) /
                        1e6,
                    hits);
    }
    return 0;
}
