namespace cascade {
// placeholder translation unit; replaced as the ir subsystem lands.
}
