/// \file
/// The Cascade runtime (paper §3.4, Fig. 5/6): REPL eval, the
/// distributed-system IR instantiated as engines wired by global nets over
/// the data/control plane, the batching scheduler, the interrupt queue,
/// background compilation with software-to-hardware engine transitions,
/// ABI forwarding (standard components inlined into the user hardware
/// engine), open-loop scheduling, and native mode.

#ifndef CASCADE_RUNTIME_RUNTIME_H
#define CASCADE_RUNTIME_RUNTIME_H

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/diagnostics.h"
#include "fpga/compile.h"
#include "ir/hw_wrapper.h"
#include "ir/subprogram.h"
#include "runtime/debugger.h"
#include "runtime/engine.h"
#include "sim/vcd.h"
#include "telemetry/export.h"
#include "telemetry/journal.h"
#include "telemetry/request_trace.h"
#include "telemetry/telemetry.h"
#include "verilog/elaborate.h"

namespace cascade::telemetry {
class MonitorServer;
}
namespace cascade::service {
class CompileService;
}
namespace cascade::hypervisor {
class FabricManager;
struct Admission;
}
namespace cascade::jit {
class JitKernel;
}

namespace cascade::runtime {

/// Where a subprogram's engine currently executes (Fig. 9 stages).
enum class Location {
    Software,
    Hardware,
    HardwareForwarded, ///< stdlib components inlined into the user engine
    Native,            ///< compiled exactly as written, no instrumentation
    /// Native-code JIT tier: the levelized netlist compiled to machine
    /// code and driven through the hardware-engine ABI. Fabric semantics
    /// (same wrapper, MMIO map, open loop) on the host CPU — the middle
    /// rung of the software -> jit -> fabric ladder, and the landing spot
    /// after a hypervisor eviction while the fabric recompile is pending.
    Jit,
};

/// Stable display name for a tier ("Software", "Jit", "Hardware", ...):
/// the string used in transition logs, stats_json, and the per-tenant
/// residency column of the multi-tenant bench.
const char* location_name(Location loc);

class Runtime : public EngineCallbacks {
  public:
    struct Options {
        /// §4.2: merge user logic into a single subprogram.
        bool enable_inlining = true;
        /// Background compilation to hardware engines.
        bool enable_hardware = true;
        /// Native-code JIT tier: every background compile also lowers the
        /// levelized netlist to C++, compiles it in-process (system
        /// compiler, content-addressed cache), and adopts the resulting
        /// kernel while the (much slower) fabric place-and-route is still
        /// running. Degrades cleanly to software-only when no compiler is
        /// usable (journaled as jit.unavailable).
        bool enable_jit = true;
        /// §4.3: inline standard components into the user hardware engine.
        bool enable_forwarding = true;
        /// §4.4: let the hardware engine toggle its own clock.
        bool enable_open_loop = true;
        /// §4.5: compile as written; requires no unsynthesizable code.
        bool native_mode = false;

        double compile_effort = 1.0;
        double device_clock_mhz = 50.0;
        double mmio_latency_s = 1e-6;
        uint64_t device_les = 110000;
        uint64_t device_bram_bits = 11000000;
        /// Initial open-loop batch size (clock toggles per relinquish).
        /// Adaptive profiling (§4.4) then resizes batches so the engine
        /// relinquishes control about every open_loop_target_wall_s.
        uint64_t open_loop_iterations = 1u << 12;
        /// Paper §4.4: engines relinquish control every "small number of
        /// seconds". IO-bound programs benefit from a smaller target
        /// (peripheral service happens between batches).
        double open_loop_target_wall_s = 1.0;
        /// Source-level profiler (REPL :profile / :fabric). Per-process
        /// trigger counts are always collected (one counter add per
        /// process execution, same cost class as the existing scheduler
        /// counters); this switch additionally enables wall-time
        /// attribution in the interpreter and per-node eval/toggle
        /// counters on the fabric. Off by default so benches measure the
        /// uninstrumented paths.
        bool profiling = false;
        /// Placement RNG seed for background compiles. 0 (the default)
        /// derives a per-compile seed from the program version — already
        /// deterministic, and now reported in CompileReport::seed and the
        /// journal so any compile is reproducible from its logs. Nonzero
        /// forces every compile to that seed.
        uint64_t compile_seed = 0;
        /// @{ Shared mode only (the FabricManager constructor): how this
        /// runtime registers with the hypervisor. An empty name becomes
        /// "tenant-<id>"; a zero quota means unlimited (the device's
        /// capacity still applies).
        std::string tenant_name;
        uint64_t tenant_le_quota = 0;
        uint64_t tenant_bram_quota = 0;
        /// @}
        /// @{ Live monitoring (README §Monitoring). A nonzero
        /// monitor_port starts the embedded HTTP server on
        /// 127.0.0.1:<port> at construction (CLI --monitor, REPL
        /// :monitor). Deliberately excluded from the journal header:
        /// monitoring is observational, so a replay neither needs nor
        /// wants to rebind the recorded session's port.
        uint16_t monitor_port = 0;
        /// Wall-second period of the in-scheduler time-series sampler
        /// and SLO evaluation (<= 0 disables both; sampling also runs
        /// whenever a monitor server is active).
        double timeseries_interval_s = 0.5;
        /// @}
        /// @{ SLO thresholds, evaluated over a rolling window. A zero
        /// threshold disables that objective; breach transitions are
        /// journaled as `slo.breach` and surfaced at GET /slo.
        double slo_window_s = 60;
        double slo_max_cold_compile_p99_s = 0;
        double slo_max_warm_compile_p99_s = 0;
        double slo_max_interrupt_p99_s = 0;
        double slo_min_ticks_per_s = 0;
        /// @}
    };

    Runtime(); ///< default options
    explicit Runtime(Options options);
    /// Shared mode: compiles go through the pooled \p service and
    /// hardware residency through the \p fabric hypervisor (one shared
    /// FpgaDevice hosting many tenants; this runtime self-evicts back to
    /// software when flagged). Both must outlive the runtime. Default
    /// construction keeps today's exclusive device + private single
    /// worker.
    Runtime(Options options, service::CompileService& service,
            hypervisor::FabricManager& fabric);
    ~Runtime() override;

    Runtime(const Runtime&) = delete;
    Runtime& operator=(const Runtime&) = delete;

    /// View: $display lines (newline-terminated) and $write chunks.
    std::function<void(const std::string&)> on_output;

    /// Lexes/parses/type-checks one eval; on success integrates the code
    /// and (re)starts engines. On failure reports via \p errors and leaves
    /// the running program untouched.
    bool eval(std::string_view source, std::string* errors = nullptr);

    /// One scheduler iteration (Fig. 6). Returns false once $finish ran.
    bool step();
    /// Runs until \p ticks virtual clock ticks elapsed (or finished).
    bool run_for_ticks(uint64_t ticks);
    /// Runs scheduler iterations until finished or the iteration budget is
    /// exhausted. Returns true if finished.
    bool run(uint64_t max_iterations);

    bool finished() const { return finished_; }

    /// @{ Peripherals.
    void set_pad(uint64_t buttons);
    BitVector led_state();
    void fifo_push(const std::vector<uint8_t>& bytes);
    uint64_t fifo_bytes_consumed() const { return fifo_consumed_; }
    size_t fifo_backlog() const { return fifo_queue_.size(); }
    /// @}

    /// @{ Introspection for benches and tests.
    uint64_t virtual_ticks() const { return clock_toggles_ / 2; }
    /// Posedges already executed — unlike virtual_ticks() this counts a
    /// tick whose posedge ran but whose negedge hasn't yet. Engine
    /// handoffs open/close their attribution windows on this boundary so
    /// a mid-window adoption never double-counts (or drops) the
    /// in-flight tick.
    uint64_t posedges_seen() const { return (clock_toggles_ + 1) / 2; }
    /// The virtual timeline (seconds): wall time while user logic runs in
    /// software, modeled device/bus time while it runs in hardware.
    double timeline_seconds() const { return timeline_s_; }
    Location user_location() const { return user_location_; }
    /// A fabric compile finished and was adopted (Hardware,
    /// HardwareForwarded or Native). The JIT tier does not count: it is
    /// hardware-shaped but fabric-free, so callers waiting on real
    /// residency keep waiting through a JIT adoption.
    bool hardware_ready() const;
    const std::optional<fpga::CompileReport>& last_compile_report() const
    {
        return last_report_;
    }
    uint64_t scheduler_iterations() const { return iterations_; }
    /// Shared mode: the hypervisor tenant id this runtime registered as
    /// (0 in exclusive mode).
    uint64_t tenant_id() const { return tenant_; }
    bool shared_mode() const { return fabric_ != nullptr; }
    /// @}

    /// @{ Waveform capture (IEEE-1364 VCD). The dump is runtime-owned and
    /// engine-agnostic: probe values are sampled at end of timestep from
    /// global nets and the user subprogram's state snapshot, so the same
    /// .vcd is produced whether the subprogram runs in software or on the
    /// fabric — and a mid-run engine adoption splices into the open dump.
    /// While a dump is active, open-loop scheduling is suspended (free
    /// running would skip samples).

    /// Opens (truncates) the dump file and starts capture at the next end
    /// of timestep. Fails (false + *err) on IO error.
    bool vcd_open(const std::string& path, std::string* err = nullptr);
    /// Flushes and closes the current dump (no-op without one); capture
    /// stops and a new vcd_open() may start a fresh file.
    void close_vcd();
    /// Capture requested and the file is (or will be) open.
    bool vcd_active() const { return vcd_capture_; }
    const std::string& vcd_path() const { return vcd_requested_path_; }
    /// Adds a probe on a global net or a user-subprogram register. Errors
    /// on unknown signal, or once the first sample froze the signal set.
    /// With no explicit probes (or after $dumpvars) every net and register
    /// is dumped.
    bool add_probe(const std::string& name, std::string* err = nullptr);
    /// Removes an explicit probe by name (before the set freezes).
    bool remove_probe(const std::string& name);
    std::vector<std::string> probes() const { return probe_names_; }

    /// Blocks (bounded by \p timeout_s wall seconds) until the in-flight
    /// background compile is adopted, polling without advancing virtual
    /// time — so a program can start on the simulated fabric at tick 0.
    /// Returns true once the user subprogram left software.
    bool wait_for_hardware(double timeout_s = 10.0);
    /// @}

    /// @{ Interactive debugger (README §Interactive debugging, REPL
    /// :break/:watch/:step/:continue/:peek). Conditions are named-signal
    /// breakpoints and value-change watchpoints, evaluated uniformly
    /// across engines: in software they are checked once per
    /// inter-timestep window behind a single relaxed atomic load (zero
    /// cost while disarmed); while the program is hardware-resident the
    /// synthesis path emits an ILA-style instrumented twin — trigger
    /// comparator cells on the watched nets plus a bounded pre-trigger
    /// capture ring — and a fabric fire cooperatively evicts the program
    /// to software over the state-transfer ABI so stepping is
    /// cycle-accurate in the interpreter. A fire pauses the virtual
    /// clock: the scheduler holds at the halted iteration (open-loop
    /// grants suspended, like VCD capture) until debug_step()/
    /// debug_continue(). All fires/steps/peeks are journaled, so a
    /// recorded debug session replays deterministically.

    /// Arms `signal op value` (op: == != < > <= >=; value: unsigned
    /// decimal, resized to the signal's width). Returns the point id, or
    /// 0 with *err set.
    uint64_t debug_break(const std::string& signal, const std::string& op,
                         const std::string& value,
                         std::string* err = nullptr);
    /// Arms a value-change watchpoint. Returns the point id, or 0.
    uint64_t debug_watch(const std::string& signal,
                         std::string* err = nullptr);
    /// Disarms one point by id. False if no such point.
    bool debug_delete(uint64_t id);
    /// While halted: advances exactly \p cycles virtual clock cycles,
    /// then re-halts. No-op (false + *err) when not halted.
    bool debug_step(uint64_t cycles = 1, std::string* err = nullptr);
    /// Releases the halt; execution (and hardware re-admission, if a
    /// compile is pending) resumes on the next scheduler call.
    bool debug_continue();
    /// Live value of one signal at honest cost (interpreter map lookup
    /// in software, one MMIO readback in hardware). Journaled as a
    /// compared `debug.peek` event, so a replayed peek cross-checks the
    /// recorded value.
    std::optional<BitVector> debug_peek(const std::string& signal,
                                        std::string* err = nullptr);
    bool debug_halted() const
    {
        return debug_halted_.load(std::memory_order_relaxed);
    }
    Debugger& debugger() { return debugger_; }
    /// True when trigger comparator cells are live in the fabric twin.
    bool hw_debug_armed() const
    {
        return hw_debug_armed_.load(std::memory_order_relaxed);
    }
    /// Where a fired point's pre-trigger window is dumped (VCD).
    void set_debug_window_path(const std::string& path)
    {
        debug_window_path_ = path;
    }
    const std::string& debug_window_path() const
    {
        return debug_window_path_;
    }
    /// Human-readable point table (the REPL's :debug view).
    std::string debug_table() const;
    /// {"schema":"cascade.debug.v1"} snapshot (GET /debug). Thread-safe.
    std::string debug_json() const;
    /// @}

    /// @{ Telemetry (see README.md §Observability).
    /// One engine-location transition this runtime performed (recorded on
    /// hardware adoption; also traced as an instant event).
    struct TransitionRecord {
        uint64_t version = 0;    ///< adopted program version
        Location to = Location::Software;
        double timeline_seconds = 0; ///< virtual time at adoption
        double trace_ts_us = 0;      ///< tracer timestamp at adoption
        double clock_mhz = 0;        ///< adopted fabric clock
    };

    /// This runtime's scoped metrics view (scheduler/engine counters).
    /// Process-wide metrics (compile flow, device programming) live in
    /// telemetry::Registry::global().
    telemetry::Registry& telemetry() { return telemetry_; }
    const std::vector<TransitionRecord>& transitions() const
    {
        return transitions_;
    }
    /// Machine-readable snapshot: scheduler/engine metrics, per-phase
    /// compile timings from the last report, and the transition log, as
    /// one JSON object (benches write this next to their output).
    std::string stats_json() const;
    /// The REPL's :top view: per-tenant ticks/s, resident state, and
    /// wait-time share via the hypervisor's fleet table in shared mode;
    /// a one-line session summary in exclusive mode.
    std::string top_table() const;
    /// Human-readable snapshot (the REPL's :stats view).
    std::string stats_table() const;
    /// @}

    /// @{ Live monitoring (README §Monitoring). The embedded HTTP server
    /// exposes /metrics (Prometheus text format), /healthz, /slo,
    /// /timeseries, and /events (live journal tail as NDJSON). Opt-in:
    /// Options::monitor_port, start_monitor(), CLI --monitor, or the
    /// REPL's :monitor.

    /// Starts the monitor on 127.0.0.1:\p port (0 = ephemeral; read the
    /// bound port back with monitor_port()). False + *err on failure.
    bool start_monitor(uint16_t port, std::string* err = nullptr);
    void stop_monitor();
    bool monitoring() const;
    uint16_t monitor_port() const; ///< bound port; 0 when not monitoring

    /// The /metrics body: this runtime's registry, the process registry,
    /// per-tenant fleet gauges (`tenant` label), per-site lock-contention
    /// series (`site` label), compile-service gauges, and SLO state, in
    /// the Prometheus text exposition format. Thread-safe (reads only
    /// atomics and mutex-protected snapshots), so the server thread may
    /// call it concurrently with the scheduler.
    std::string metrics_text() const;

    /// @{ SLO status over the rolling window (GET /slo, REPL :slo).
    std::string slo_json() const;
    std::string slo_table() const;
    bool slo_breached() const;
    telemetry::SloTracker& slo_tracker() { return *slo_; }
    /// @}

    /// @{ The in-process time-series recorder (GET /timeseries; dumped
    /// into the crash black box). Sampled from the scheduler's
    /// inter-timestep window every Options::timeseries_interval_s.
    std::string timeseries_json() const { return timeseries_.json(); }
    telemetry::TimeSeries& timeseries() { return timeseries_; }
    /// @}

    /// Clears every measurement surface in one shot (the REPL's
    /// :stats reset): both metric registries, the sync registry's sites,
    /// blocked-on matrix, and per-tenant wait totals, the time-series
    /// rings, and the SLO windows and breach counters.
    void reset_stats();
    /// @}

    /// @{ Causal request tracing (README §Request tracing). Every
    /// user-visible operation — eval, background compile, interrupt
    /// batch, eviction — carries a request id (the journal seq of its
    /// originating event) through the compile service, the hypervisor's
    /// admission decisions, and the adoption window. The tracker's
    /// critical-path analyzer partitions each request's wall time into
    /// named segments (queue, cache, synth/techmap/place/timing,
    /// admission, adoption, first_tick) that sum to end-to-end latency.
    telemetry::RequestTracker& request_tracker() { return requests_; }
    const telemetry::RequestTracker& request_tracker() const
    {
        return requests_;
    }
    /// {"schema":"cascade.requests.v1"} over the retained requests.
    std::string requests_json() const { return requests_.json(); }
    /// GET /requests: one request per NDJSON line.
    std::string requests_ndjson() const { return requests_.ndjson(); }
    /// The REPL's :requests view.
    std::string requests_table() const { return requests_.table(); }
    /// The REPL's :why <id> view (latency decomposition of one request).
    std::string request_why(uint64_t id) const
    {
        return requests_.why(id);
    }
    /// @}

    /// @{ Source-level profiler (README §Profiling, REPL :profile).
    /// One user process (always/initial/continuous assign), attributed to
    /// its module instance and keyed by the canonical printed form of the
    /// originating module item — the same key whether the process ran in
    /// the interpreter or on the fabric, so profiles splice across a
    /// mid-run software-to-hardware adoption.
    struct ProfileEntry {
        std::string instance; ///< last path component ("root", "fifo", ...)
        std::string key;      ///< canonical printed module item
        std::string label;    ///< compressed one-line form of the key
        std::string kind;     ///< "seq" | "comb" | "initial" | "continuous"
        std::vector<std::string> triggers; ///< e.g. "posedge clk_val"
        uint64_t sw_triggers = 0; ///< interpreter process executions
        /// Fabric executions, attributed from device ticks for processes
        /// whose sensitivity list is entirely the adopted clock.
        uint64_t hw_triggers = 0;
        uint64_t eval_ns = 0; ///< interpreter wall time (profiling on)
        uint64_t total_triggers() const { return sw_triggers + hw_triggers; }
    };

    /// Toggles timing/fabric instrumentation at runtime (the REPL's
    /// :profile on/off). Applies to live engines and to every engine
    /// created afterwards.
    void set_profiling(bool on);
    bool profiling() const { return options_.profiling; }
    /// Merged view: retired-engine accumulators + live engines + the
    /// current hardware attribution window, sorted hottest-first.
    std::vector<ProfileEntry> profile() const;
    /// Machine-readable profile ({"schema":"cascade.profile.v1", ...}).
    std::string profile_json() const;
    /// Human-readable profile (the REPL's :profile view).
    std::string profile_table() const;
    /// Writes the profile as collapsed stacks ("instance;label weight"
    /// lines) for flamegraph.pl / speedscope. Weight is eval_ns when
    /// timing was collected, trigger counts otherwise.
    bool write_flamegraph(const std::string& path,
                          std::string* err = nullptr) const;
    /// Fabric residency report (the REPL's :fabric view): LE utilization,
    /// Fmax, and the critical path rendered as named user signals, plus
    /// live per-source activity counters while profiling on hardware.
    std::string fabric_table() const;
    /// @}

    /// @{ Flight recorder (README §Flight recorder & replay). The journal
    /// is always on: every nondeterminism-bearing event (eval'ed text,
    /// interrupt enqueue/flush, adoption decisions, compile launch/done
    /// with placement seed, open-loop grants, output digests) lands in a
    /// bounded in-memory ring that the crash black box dumps on a fatal
    /// error. start_recording() additionally mirrors events to a JSONL
    /// file (`cascade.events.v1`) that replay.h re-executes
    /// deterministically.

    telemetry::Journal& journal() { return journal_; }

    /// Starts mirroring the journal to \p path. Must be called on a fresh
    /// session (before any user eval): the journal replays a whole
    /// session, so a partial recording would not be re-executable.
    bool start_recording(const std::string& path, std::string* err = nullptr);
    void stop_recording();
    bool recording() const { return journal_.writing(); }
    /// The recording header: this runtime's options as one JSON object
    /// (doubles printed round-trip exact), from which replay reconstructs
    /// an identical runtime.
    std::string journal_header_json() const;

    /// Everything replay pins to reproduce a recorded session: per-version
    /// placement seeds, the scheduler iteration at which each compile
    /// outcome was acted on (adoption is wall-clock-timed live), and the
    /// open-loop batch grants (adaptively sized from wall time live).
    struct ReplaySchedule {
        struct CompilePoint {
            uint64_t iteration = 0; ///< scheduler_iterations() at decision
            uint64_t version = 0;   ///< program version decided on
        };
        std::deque<CompilePoint> compile_points; ///< adoptions + rejections
        /// JIT-tier decisions (jit.adopt / jit.unavailable events), pinned
        /// to their recorded scheduler iteration exactly like
        /// compile_points so the compared event order reproduces.
        std::deque<CompilePoint> jit_points;
        /// Versions whose recorded JIT build reported no usable compiler:
        /// forced verbatim (the replay host's toolchain may differ).
        std::set<uint64_t> jit_unavailable;
        std::deque<uint64_t> grants;             ///< open-loop batch sizes
        std::map<uint64_t, uint64_t> seeds;      ///< version -> place seed
        /// Scheduler iterations at which the recorded session was evicted
        /// from hardware (hypervisor.evict events): replay re-triggers
        /// the hw->sw relocation at exactly these points.
        std::deque<uint64_t> evictions;
        /// Versions whose compile was rejected in the recording, with the
        /// recorded error text (hypervisor quota/admission denials cannot
        /// be re-derived on the exclusive replay device, so every
        /// recorded rejection is forced verbatim).
        std::map<uint64_t, std::string> rejections;
    };

    /// Enters replay mode on a fresh session: compile outcomes are acted
    /// on exactly at the recorded scheduler iterations (blocking on the
    /// compile server as needed), placement seeds and open-loop grants
    /// come from the schedule instead of wall time.
    void begin_replay(ReplaySchedule schedule);
    bool replaying() const { return replay_; }
    /// @}

    /// EngineCallbacks:
    void on_display(const std::string& text) override;
    void on_write(const std::string& text) override;
    void on_finish() override;
    uint64_t virtual_time() const override { return virtual_ticks(); }
    /// $monitor suppression: a line prints only when its text differs from
    /// the previous line for the same monitor key. The map lives here, not
    /// in an engine, so the once-per-change guarantee survives a sw -> hw
    /// engine handoff.
    void on_monitor(const std::string& key, const std::string& text) override;
    void on_dumpfile(const std::string& path) override;
    void on_dumpvars() override;
    void on_dumpoff() override;
    void on_dumpon() override;

  private:
    /// The delegate both public constructors funnel into (null service =
    /// construct a private one; null fabric = exclusive mode).
    Runtime(Options options, service::CompileService* service,
            hypervisor::FabricManager* fabric);

    struct Net {
        std::string name;
        BitVector value;
        bool has_value = false;
        std::vector<std::pair<size_t, uint32_t>> readers;
    };

    struct Slot {
        ir::Subprogram sub;
        std::unique_ptr<Engine> engine;
        std::vector<int32_t> port_net; ///< port index -> net index
        std::vector<bool> port_is_input;
        bool is_clock = false;
        bool is_stdlib = false;
        std::string instance; ///< last path component
    };

    /// A finished background compile ready for adoption.
    struct CompileOutcome {
        uint64_t version = 0;
        fpga::CompileResult result;
        ir::WrapperMap map;
        /// Wrapper port wiring: (port name, net name, is_input).
        std::vector<std::tuple<std::string, std::string, bool>> ports;
        /// Prefixes for stdlib state transfer: instance -> inline prefix.
        std::map<std::string, std::string> prefixes;
        bool native = false;
        std::string clock_net;
        /// @{ Request tracing: the causal id (journal seq of this
        /// compile's compile.launch event) and the timeline anchors the
        /// critical-path analyzer partitions into segments. submit_us is
        /// stamped at launch, the svc_* anchors are copied from the
        /// service's Done, polled_us when poll_compiles() saw the result.
        uint64_t request = 0;
        double submit_us = 0;
        double svc_cache_us = 0;
        double svc_enqueue_us = 0;
        double svc_dequeue_us = 0;
        double svc_done_us = 0;
        double polled_us = 0;
        /// @}
    };

    /// Runtime wiring for one FIFO standard component.
    struct FifoBinding {
        std::string pins_net;
        std::string push_net;
        std::string full_net;
        std::string prefix; ///< inline prefix for hardware state access
    };

    /// One finished JIT-tier build, produced on the async worker thread:
    /// the compiled kernel (null when the tier is unavailable, with
    /// \p error saying why), the netlist it was generated from (kept for
    /// the debugger's instrumented-twin rebuild), and its content
    /// address.
    struct JitBuild {
        std::unique_ptr<jit::JitKernel> kernel;
        std::shared_ptr<const fpga::Netlist> netlist;
        std::string digest;
        bool cache_hit = false;
        std::string error;
    };

    /// An in-flight JIT build: the wrapper metadata adoption needs
    /// (identical to what the fabric path carries in its CompileOutcome)
    /// plus the worker's future.
    struct JitJob {
        uint64_t version = 0;
        ir::WrapperMap map;
        std::vector<std::tuple<std::string, std::string, bool>> ports;
        std::map<std::string, std::string> prefixes;
        std::string clock_net;
        std::future<JitBuild> future;
    };

    bool rebuild_program(std::string* errors, const char* reason);
    /// One scheduler iteration; step()/run()/run_for_ticks() wrap this so
    /// the public entry points journal api.* input events exactly once.
    /// In shared mode each iteration is also a "sched.iter" span on this
    /// tenant's trace lane (step_body carries the actual phases).
    bool step_internal();
    bool step_body();
    /// Stamps the calling thread with this runtime's tenant id (shared
    /// mode only) so lock waits and trace events attribute correctly.
    /// Public entry points call this: a tenant's Runtime is driven from
    /// its own thread, which may not be the one that constructed it.
    void bind_thread_tenant() const;
    /// Journals coalesced api.step{n} for any pending public step() calls;
    /// called before any other input-class event is recorded.
    void flush_api_steps();
    /// Journals a `log` event and mirrors it through the process Logger.
    void log_event(LogLevel level, const char* component,
                   const std::string& message);
    /// poll_compiles() in replay mode: act only at scheduled iterations.
    void replay_poll_compiles();
    /// Journals compile.cache + compile.done and hands the outcome to
    /// adopt_hardware(). \p admission is the hypervisor's slot grant in
    /// shared mode, null in exclusive mode (the private device programs).
    void act_on_compile(CompileOutcome outcome,
                        hypervisor::Admission* admission);
    /// Shared mode: asks the hypervisor for a slot before acting. A
    /// retryable denial parks the outcome (journaled hypervisor.defer)
    /// until the fabric's capacity epoch moves.
    void maybe_admit_and_act(CompileOutcome outcome);
    /// Re-attempts a parked admission once the fabric changed.
    void retry_parked();
    /// Relocates the user program from hardware back to its software
    /// engines (the hypervisor's cooperative eviction path; also driven
    /// by replay at recorded hypervisor.evict iterations). State-transfer
    /// safe at any scheduler iteration per the Cascade ABI.
    void evict_to_software();
    void settle_evaluations();
    void flush_interrupts();
    void wire_nets();
    void route_outputs();
    void inject_net(const std::string& name, const BitVector& value);
    int find_net(const std::string& name) const;
    void window();
    void resolve_peripherals();
    void service_peripherals();
    uint32_t pad_width_hint(const std::string& net) const;
    void poll_compiles();
    /// True when the program moved to hardware; false on rejection (the
    /// request tracer closes a rejected request at the adoption segment,
    /// an adopted one only after its first hardware tick).
    bool adopt_hardware(CompileOutcome outcome,
                        hypervisor::Admission* admission);
    void launch_compile();
    /// The shared back half of every adoption: state gather, slot rebuild
    /// around the new engine, net rewiring, state restore, journaling.
    /// \p fabric is a programmed Bitstream (is_jit false) or a compiled
    /// JitKernel (is_jit true); \p jit_digest names the kernel's content
    /// address for the jit.adopt event.
    bool adopt_fabric(CompileOutcome outcome,
                      std::unique_ptr<fpga::FabricExec> fabric,
                      double actual_clock_mhz,
                      hypervisor::Admission* admission, bool is_jit,
                      const std::string& jit_digest = std::string());
    /// Spawns the async JIT build for the wrapper module just submitted
    /// to the fabric compiler (journals jit.launch).
    void launch_jit(std::shared_ptr<const verilog::ElaboratedModule> em,
                    const CompileOutcome& outcome);
    /// Adopts/discards a finished JIT build. Called right before
    /// poll_compiles() so that, when both tiers land in one window, the
    /// jit.adopt always precedes the fabric adopt in the journal.
    void poll_jit();
    /// poll_jit() in replay mode: act only at recorded jit_points.
    void replay_poll_jit();
    /// Wraps the build into a CompileOutcome and runs adopt_fabric.
    bool adopt_jit(JitJob job, JitBuild build);
    /// The user program occupies actual fabric (Hardware,
    /// HardwareForwarded or Native — not Jit, not Software). Gates
    /// hypervisor residency release and hardware_ready().
    bool fabric_resident() const
    {
        return user_location_ == Location::Hardware ||
               user_location_ == Location::HardwareForwarded ||
               user_location_ == Location::Native;
    }
    /// Closes an adopted compile request once the fabric executed its
    /// first post-adoption tick (called from window()); also closes it
    /// at the adoption point if the tenant is evicted before ticking.
    void note_first_hw_tick();
    /// Journals the info-class request.done event (deterministic payload
    /// only — ids are journal seqs, so record/replay journals match) and
    /// closes the request in the tracker.
    void finish_request(uint64_t id, const char* kind, uint64_t version,
                        bool ok, double end_us);
    void run_open_loop();
    void feed_fifo_hw(const FifoBinding& f);
    bool promote_pins(
        verilog::ModuleDecl* merged,
        const std::vector<std::tuple<std::string, std::string, bool>>&
            pins);
    std::vector<bool> initial_skip_mask(
        const verilog::ElaboratedModule& em, const std::string& path,
        bool record);
    const Slot* find_stdlib(const std::string& type) const;
    Slot* user_slot();

    /// Accumulated profile of one process across retired engine
    /// incarnations (ProfileEntry minus the identity fields, which are
    /// the map keys).
    struct ProcAccum {
        std::string label;
        std::string kind;
        std::vector<std::string> triggers;
        uint64_t executions = 0;  ///< interpreter trigger counts
        uint64_t eval_ns = 0;     ///< interpreter wall attribution
        uint64_t hw_triggers = 0; ///< fabric attribution (closed windows)
    };

    /// Folds a retiring slot's interpreter counters into profile_acc_.
    /// Must run before the slot's engine is destroyed; each engine is
    /// absorbed exactly once (counters are not reset, so live engines
    /// must not be absorbed).
    void absorb_slot_profile(const Slot& slot);
    /// Closes the open hardware attribution window: credits device ticks
    /// since adoption to clock-driven processes and restarts the window.
    void fold_hw_window();
    /// Shared by profile() and fold_hw_window(): adds \p ticks of fabric
    /// execution to every accumulated process driven purely by the
    /// adopted clock.
    void attribute_hw_ticks(
        std::map<std::string, std::map<std::string, ProcAccum>>* acc,
        uint64_t ticks) const;

    /// One declared VCD probe, resolved at declare time.
    struct Probe {
        std::string name;
        bool is_net = false;
        int net_index = -1; ///< nets_ index when is_net
    };

    /// Time-series + SLO sampling hook (called from window()): every
    /// timeseries_interval_s wall seconds it records ticks/s, queue
    /// depths, residency, and lock-wait share, then ticks the SLO
    /// tracker (journaling `slo.breach` transitions). No-ops between
    /// intervals at the cost of one wall-clock read.
    void sample_monitor();
    /// The `tenant` label value in shared mode ("" in exclusive mode).
    std::string monitor_tenant_label() const;

    /// End-of-timestep sampling hook (called from window()).
    void sample_vcd();
    /// Freezes the probe set: expands probe-all / explicit names into
    /// resolved probes and declares them with the writer, sorted by name.
    void declare_vcd_signals();
    /// Gathers current probe values (index-aligned with declared probes);
    /// \p storage owns snapshot copies the pointers refer into.
    std::vector<const BitVector*> gather_vcd_values(
        std::vector<BitVector>* storage);
    /// True if \p name resolves to a net or user register right now.
    bool signal_exists(const std::string& name) const;

    /// @{ Debugger internals (see the public block above).
    /// Armed-condition evaluation hook, called once per inter-timestep
    /// window when debugger_.armed(): samples the pre-trigger ring,
    /// evaluates software conditions (or drains the fabric's trigger
    /// state while hw_debug_armed_), and dispatches fires.
    void debug_eval_window();
    /// One fired point: journals `debug.fire`, posts the operator line,
    /// dumps the pre-trigger window, halts the virtual clock, and — on a
    /// hardware-origin fire — evicts to software so stepping is
    /// cycle-accurate in the interpreter.
    void handle_debug_fire(const Debugger::Fire& fire, bool hw_fire);
    /// Writes the pre-trigger capture ring (fabric ring on a hardware
    /// fire, the runtime's mirror ring otherwise) to debug_window_path_.
    void dump_debug_window(bool hw_fire);
    /// Pushes one sample of the probed signal set into debug_ring_.
    /// Mirrors the frozen VCD probe set when a dump is active (same
    /// signal order, so a dumped window byte-matches the main file's
    /// tail), else explicit probes, else the armed signals.
    void sample_debug_ring(std::map<std::string, BitVector>* cache);
    /// Swaps the resident hardware engine for an instrumented twin
    /// (trigger comparator cells + capture ring) — or back to a plain
    /// one when the last point is deleted — rebuilding from
    /// hw_rebuild_ with name-based state transfer. False + *err when
    /// instrumentation is unavailable (condition evaluation then falls
    /// back to per-window software reads with open loop suspended).
    bool rearm_hardware_debug(std::string* err);
    /// Name lookup for condition evaluation / :peek: global nets first,
    /// then the user engine's peek ABI (\p cache owns engine readbacks
    /// so repeated lookups in one window cost one MMIO read).
    const BitVector* debug_read(const std::string& name,
                                std::map<std::string, BitVector>* cache);
    /// @}

    /// Cached handles into telemetry_ so hot-path recording is a single
    /// relaxed atomic op (no name lookup). Initialized in the ctor.
    struct Metrics {
        telemetry::Counter* iterations = nullptr;
        telemetry::Counter* evals_accepted = nullptr;
        telemetry::Counter* evals_rejected = nullptr;
        telemetry::Counter* engine_evals_sw = nullptr;
        telemetry::Counter* engine_evals_hw = nullptr;
        telemetry::Counter* engine_updates_sw = nullptr;
        telemetry::Counter* engine_updates_hw = nullptr;
        telemetry::Counter* net_events = nullptr;
        telemetry::Counter* interrupts = nullptr;
        telemetry::Counter* clock_toggles = nullptr;
        telemetry::Counter* compiles_launched = nullptr;
        telemetry::Counter* compiles_adopted = nullptr;
        telemetry::Counter* compiles_rejected = nullptr;
        telemetry::Counter* jit_launched = nullptr;
        telemetry::Counter* jit_adopted = nullptr;
        telemetry::Counter* jit_unavailable = nullptr;
        telemetry::Counter* jit_discarded = nullptr;
        telemetry::Counter* transitions = nullptr;
        telemetry::Counter* open_loop_iterations = nullptr;
        telemetry::Counter* vcd_samples = nullptr;
        telemetry::Counter* vcd_bytes = nullptr;
        telemetry::Counter* monitor_lines = nullptr;
        telemetry::Counter* monitor_suppressed = nullptr;
        telemetry::Counter* debug_fires = nullptr;
        telemetry::Counter* debug_steps = nullptr;
        telemetry::Counter* debug_peeks = nullptr;
        telemetry::Gauge* interrupt_depth = nullptr;
        telemetry::Gauge* fifo_backlog = nullptr;
        telemetry::Gauge* debug_points = nullptr;
        telemetry::Gauge* debug_halted = nullptr;
        telemetry::Histogram* step_ns = nullptr;
        telemetry::Histogram* eval_ns = nullptr;
        telemetry::Histogram* open_loop_batch = nullptr;
        telemetry::Histogram* open_loop_wall_ns = nullptr;
        telemetry::Histogram* compile_wait_ns = nullptr;
    };

    void init_metrics();

    Options options_;
    telemetry::Registry telemetry_;
    /// The flight-recorder journal (ring always on; file when recording).
    telemetry::Journal journal_;
    /// Public step() calls not yet journaled (coalesced into api.step{n}).
    uint64_t pending_api_steps_ = 0;
    /// Crash black-box source registration (removed in the dtor).
    int blackbox_id_ = 0;
    bool replay_ = false;
    ReplaySchedule replay_schedule_;
    Metrics m_;
    /// True only during the ctor's implicit "Clock clk();" eval, which
    /// stays out of the user-facing repl.* metrics.
    bool bootstrapping_ = false;
    std::vector<TransitionRecord> transitions_;
    Diagnostics startup_diags_;
    verilog::ModuleLibrary lib_;
    std::vector<verilog::ItemPtr> root_items_;
    uint64_t version_ = 0;

    std::vector<Slot> slots_;
    std::vector<Net> nets_;
    std::map<std::string, size_t> net_index_;
    std::map<std::string, std::string> slot_type_; ///< path -> module type

    std::deque<std::string> interrupt_queue_;
    bool finished_ = false;
    uint64_t clock_toggles_ = 0;
    uint64_t iterations_ = 0;
    double timeline_s_ = 0;
    Location user_location_ = Location::Software;
    std::optional<fpga::CompileReport> last_report_;

    /// Executed-initial bookkeeping: path -> printed-initial -> count.
    std::map<std::string, std::map<std::string, int>> executed_initials_;

    /// $monitor on-change suppression: key -> last printed text.
    std::map<std::string, std::string> monitor_last_;

    // Waveform capture state.
    sim::VcdWriter vcd_;
    std::string vcd_requested_path_; ///< from $dumpfile or :vcd
    bool vcd_capture_ = false;       ///< $dumpvars executed or :vcd issued
    bool vcd_declared_ = false;      ///< signal set frozen (header written)
    bool vcd_probe_all_ = false;     ///< $dumpvars: dump everything
    bool vcd_pending_off_ = false;   ///< $dumpoff seen mid-step
    bool vcd_pending_on_ = false;    ///< $dumpon seen mid-step
    std::vector<std::string> probe_names_; ///< explicit :probe names
    std::vector<Probe> vcd_probes_;        ///< resolved at declare time
    uint64_t vcd_bytes_seen_ = 0; ///< last writer byte count mirrored

    // Peripheral state.
    uint64_t pad_value_ = 0;
    std::deque<uint8_t> fifo_queue_;
    uint64_t fifo_consumed_ = 0;
    bool fifo_push_high_ = false;
    std::vector<std::string> pads_;
    std::vector<std::string> leds_;
    std::vector<FifoBinding> fifos_;
    std::vector<std::string> adopted_pads_;
    std::vector<std::string> adopted_leds_;
    std::vector<FifoBinding> adopted_fifos_;
    std::map<std::string, std::string> adopted_prefixes_;
    std::string clock_net_name_;

    // Profiler state: instance -> canonical process key -> accumulator.
    std::map<std::string, std::map<std::string, ProcAccum>> profile_acc_;
    /// Per retired-into-hardware instance: the local port name the
    /// adopted clock entered through (trigger descriptions use local
    /// names). Rebuilt at each adoption.
    std::map<std::string, std::string> hw_clock_ports_;
    /// Virtual tick count when the open hardware window started.
    uint64_t hw_adopt_ticks_ = 0;

    // Engine shortcuts (owned by slots_).
    class ClockEngine* clock_engine_ = nullptr;
    class HwEngine* hw_engine_ = nullptr;
    class NativeEngine* native_engine_ = nullptr;

    // Interactive-debugger state.
    Debugger debugger_;
    /// Virtual clock paused at a fired point (read by the monitor
    /// thread for GET /debug and the halted heartbeat).
    std::atomic<bool> debug_halted_{false};
    /// Inside debug_step(): the halt gate lets exactly the requested
    /// cycles through.
    bool debug_stepping_ = false;
    /// The resident hardware engine carries synthesized trigger cells
    /// (conditions fire in the fabric; the runtime only drains state).
    std::atomic<bool> hw_debug_armed_{false};
    /// Software-side pre-trigger capture ring (hardware keeps its own).
    CaptureRing debug_ring_;
    std::string debug_window_path_ = "cascade-debug-window.vcd";
    /// Point id -> journal seq of its arming event (flow arrows from
    /// arming eval to fire on the trace timeline).
    std::map<uint64_t, uint64_t> debug_arm_seq_;
    /// Tracer timestamp at the halting fire (closes a "debug.halt" span
    /// at debug_continue()).
    double debug_halt_start_us_ = 0;
    /// Everything needed to rebuild the user hardware engine around a
    /// new bitstream without a recompile (captured at adoption): the
    /// cache-shared compiled netlist is never mutated — the debugger
    /// instruments a copy and hot-swaps the engine.
    struct HwRebuildInfo {
        std::shared_ptr<const fpga::Netlist> netlist;
        ir::WrapperMap map;
        std::vector<std::string> port_names;
        std::vector<bool> port_is_input;
        double clock_mhz = 0;
    };
    std::optional<HwRebuildInfo> hw_rebuild_;

    /// Adaptive open-loop batch size (§4.4).
    uint64_t open_loop_batch_ = 0;

    fpga::FpgaDevice device_;
    /// The compile pipeline: a private 1-worker service in exclusive
    /// mode, the shared pooled service in shared mode.
    service::CompileService* compile_service_ = nullptr;
    std::unique_ptr<service::CompileService> owned_compile_service_;
    uint64_t compile_client_ = 0;
    /// Shared mode: the fabric hypervisor this runtime is a tenant of
    /// (null in exclusive mode).
    hypervisor::FabricManager* fabric_ = nullptr;
    uint64_t tenant_ = 0;
    uint64_t compile_inflight_version_ = 0;
    std::optional<CompileOutcome> pending_outcome_;
    /// The in-flight JIT build for the current version (at most one; a
    /// rebuild obsoletes it and poll_jit discards the stale result).
    std::optional<JitJob> jit_job_;
    /// Shared mode: a finished compile awaiting fabric capacity (its
    /// admission was denied retryable). Re-tried when the hypervisor's
    /// capacity epoch moves past parked_epoch_.
    std::optional<CompileOutcome> parked_outcome_;
    uint64_t parked_epoch_ = 0;

    // Live-monitoring state (README §Monitoring).
    telemetry::TimeSeries timeseries_;
    std::unique_ptr<telemetry::SloTracker> slo_;
    /// Wall-clock origin for time-series timestamps (construction time).
    double monitor_epoch_wall_ = 0;
    double monitor_next_sample_wall_ = 0;
    /// Delta state for sampled rates (previous sample point).
    double monitor_last_sample_wall_ = 0;
    uint64_t monitor_last_sample_toggles_ = 0;
    uint64_t monitor_last_tenant_wait_ns_ = 0;
    /// Wall time each in-flight compile version was submitted at, so
    /// act_on_compile can feed end-to-end latency into the SLO tracker.
    std::map<uint64_t, double> compile_submit_wall_;
    /// Causal request tracker (REPL :requests/:why, GET /requests,
    /// cascade_request_* histograms). Feeds telemetry_, so it must be
    /// declared after it; read by the monitor thread (internally locked).
    telemetry::RequestTracker requests_{&telemetry_};
    /// An adopted compile request waiting for its first hardware tick
    /// (the request closes when virtual ticks move past the adoption
    /// point). 0 = none pending.
    uint64_t first_tick_request_ = 0;
    uint64_t first_tick_version_ = 0;
    double first_tick_adopt_us_ = 0;
    /// Wall enqueue stamps parallel to interrupt_queue_ (drained
    /// together), feeding the interrupt-latency SLO.
    std::deque<double> interrupt_enqueue_wall_;
    /// Declared last: its server thread reads members above through
    /// locked/atomic accessors, and must be gone before they are.
    std::unique_ptr<telemetry::MonitorServer> monitor_;
};

} // namespace cascade::runtime

#endif // CASCADE_RUNTIME_RUNTIME_H
