#include "sim/vcd.h"

#include <ctime>

#include "telemetry/trace.h"

namespace cascade::sim {

namespace {

/// Buffered bytes before an automatic flush to disk.
constexpr size_t kFlushThreshold = 64 * 1024;

std::string
date_line()
{
    // Single line so golden tests can strip it with a line filter.
    const std::time_t now = std::time(nullptr);
    char buf[64];
    std::tm tm_utc{};
#if defined(_WIN32)
    gmtime_s(&tm_utc, &now);
#else
    gmtime_r(&now, &tm_utc);
#endif
    std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S UTC", &tm_utc);
    return std::string("$date ") + buf + " $end\n";
}

} // namespace

VcdWriter::~VcdWriter()
{
    close();
}

bool
VcdWriter::open(const std::string& path, std::string* err)
{
    close();
    out_.open(path, std::ios::out | std::ios::trunc);
    if (!out_) {
        if (err != nullptr) {
            *err = "cannot open '" + path + "' for writing";
        }
        return false;
    }
    path_ = path;
    buf_.clear();
    signals_.clear();
    last_records_.clear();
    header_written_ = false;
    dumping_ = true;
    samples_ = 0;
    bytes_written_ = 0;
    return true;
}

int
VcdWriter::declare(const std::string& name, uint32_t width)
{
    if (header_written_) {
        return -1;
    }
    for (size_t i = 0; i < signals_.size(); ++i) {
        if (signals_[i].name == name) {
            return static_cast<int>(i);
        }
    }
    Signal sig;
    sig.name = name;
    sig.width = width == 0 ? 1 : width;
    sig.id = id_code(signals_.size());
    signals_.push_back(std::move(sig));
    return static_cast<int>(signals_.size() - 1);
}

std::string
VcdWriter::id_code(size_t index)
{
    // Printable identifier codes, base 94 over '!'..'~' (IEEE-1364 §18.2.1).
    std::string id;
    do {
        id += static_cast<char>('!' + index % 94);
        index /= 94;
    } while (index > 0);
    return id;
}

std::string
VcdWriter::record(const Signal& sig, const BitVector* value)
{
    if (sig.width == 1) {
        const char bit =
            value == nullptr ? 'x' : (value->to_uint64() & 1 ? '1' : '0');
        return std::string(1, bit) + sig.id + "\n";
    }
    return "b" + (value == nullptr ? "x" : value->to_bin_string()) + " " +
           sig.id + "\n";
}

void
VcdWriter::write_header(uint64_t time,
                        const std::vector<const BitVector*>& values)
{
    append(date_line());
    append("$version Cascade VCD dumper $end\n");
    append("$timescale 1 ns $end\n");
    append("$scope module cascade $end\n");
    for (const auto& sig : signals_) {
        std::string decl = "$var wire " + std::to_string(sig.width) + " " +
                           sig.id + " " + sig.name;
        if (sig.width > 1) {
            decl += " [" + std::to_string(sig.width - 1) + ":0]";
        }
        append(decl + " $end\n");
    }
    append("$upscope $end\n");
    append("$enddefinitions $end\n");
    append("#" + std::to_string(time) + "\n");
    append("$dumpvars\n");
    last_records_.resize(signals_.size());
    for (size_t i = 0; i < signals_.size(); ++i) {
        const BitVector* v = i < values.size() ? values[i] : nullptr;
        last_records_[i] = record(signals_[i], v);
        append(last_records_[i]);
    }
    append("$end\n");
    header_written_ = true;
}

void
VcdWriter::sample(uint64_t time, const std::vector<const BitVector*>& values)
{
    if (!is_open() || !dumping_) {
        return;
    }
    if (!header_written_) {
        write_header(time, values);
        ++samples_;
        return;
    }
    std::string changes;
    for (size_t i = 0; i < signals_.size(); ++i) {
        const BitVector* v = i < values.size() ? values[i] : nullptr;
        std::string rec = record(signals_[i], v);
        if (rec != last_records_[i]) {
            changes += rec;
            last_records_[i] = std::move(rec);
        }
    }
    if (!changes.empty()) {
        append("#" + std::to_string(time) + "\n");
        append(changes);
    }
    ++samples_;
}

void
VcdWriter::dump_off(uint64_t time)
{
    if (!is_open() || !dumping_) {
        return;
    }
    dumping_ = false;
    if (!header_written_) {
        // Nothing dumped yet; the header (and first checkpoint) will be
        // written when dumping resumes.
        return;
    }
    append("#" + std::to_string(time) + "\n");
    append("$dumpoff\n");
    for (size_t i = 0; i < signals_.size(); ++i) {
        last_records_[i] = record(signals_[i], nullptr);
        append(last_records_[i]);
    }
    append("$end\n");
}

void
VcdWriter::dump_on(uint64_t time, const std::vector<const BitVector*>& values)
{
    if (!is_open() || dumping_) {
        return;
    }
    dumping_ = true;
    if (!header_written_) {
        return;
    }
    append("#" + std::to_string(time) + "\n");
    append("$dumpon\n");
    for (size_t i = 0; i < signals_.size(); ++i) {
        const BitVector* v = i < values.size() ? values[i] : nullptr;
        last_records_[i] = record(signals_[i], v);
        append(last_records_[i]);
    }
    append("$end\n");
}

void
VcdWriter::append(const std::string& text)
{
    buf_ += text;
    if (buf_.size() >= kFlushThreshold) {
        flush();
    }
}

void
VcdWriter::flush()
{
    if (!is_open() || buf_.empty()) {
        return;
    }
    TELEM_SPAN("vcd.flush");
    out_ << buf_;
    out_.flush();
    bytes_written_ += buf_.size();
    buf_.clear();
}

void
VcdWriter::close()
{
    if (!is_open()) {
        return;
    }
    flush();
    out_.close();
    path_.clear();
}

} // namespace cascade::sim
