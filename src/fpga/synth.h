/// \file
/// RTL synthesis: lowers an elaborated, hierarchy-free module to a
/// word-level netlist by symbolic execution. Combinational processes are
/// topologically ordered and executed once; sequential processes produce
/// per-register next-state expressions with guarded (mux-merged) updates,
/// and memories synthesize to read nodes plus clocked write ports. This is
/// the first of the two NP-hard-in-general steps the paper describes for
/// the FPGA toolchain (the second, place and route, lives in place.h).

#ifndef CASCADE_FPGA_SYNTH_H
#define CASCADE_FPGA_SYNTH_H

#include <memory>
#include <string>
#include <vector>

#include "common/diagnostics.h"
#include "fpga/netlist.h"
#include "verilog/elaborate.h"

namespace cascade::fpga {

/// Synthesizes \p em into a netlist. Returns null and reports diagnostics
/// on failure (combinational cycles, unsupported constructs, system tasks
/// that survived wrapping, non-static loop bounds).
std::unique_ptr<Netlist> synthesize(const verilog::ElaboratedModule& em,
                                    Diagnostics* diags);

/// A debugger trigger to synthesize into an instrumented twin (ILA-style).
/// Condition triggers get a genuine comparator cell; watch triggers probe
/// the raw signal and the evaluator detects the value change cycle to
/// cycle.
struct DebugTriggerSpec {
    uint64_t id = 0;    ///< debugger point id (round-trips to the fire)
    std::string signal; ///< signal name, resolved against the netlist
    bool watch = false; ///< value-change watchpoint (no comparator)
    std::string op;     ///< one of == != < > <= >= (condition only)
    BitVector value;    ///< comparison constant (condition only)
};

/// Instrumented twin: a copy of the base netlist with trigger cells and
/// pre-trigger capture probes appended as extra outputs (`__dbg<k>` /
/// `__dbgp<k>`), all provenance-labeled `debug:<signal>`.
struct DebugInstrumented {
    std::unique_ptr<Netlist> netlist; ///< null on failure (see err)
    /// Output index (into netlist->outputs) per trigger, parallel to the
    /// spec vector passed in.
    std::vector<uint32_t> trigger_outputs;
    /// Ring probes that resolved, with their output indices and widths.
    std::vector<std::string> probe_names;
    std::vector<uint32_t> probe_outputs;
    std::vector<uint32_t> probe_widths;
};

/// Builds the instrumented twin of \p base. Trigger signals must resolve
/// (exact register/port/alias name, else an unambiguous `.`/`_` suffix) or
/// the whole instrumentation fails; unresolved ring \p probes are skipped.
/// \p base itself is never mutated — it is typically the compile cache's
/// shared netlist.
DebugInstrumented
instrument_debug_triggers(const Netlist& base,
                          const std::vector<DebugTriggerSpec>& specs,
                          const std::vector<std::string>& probes,
                          std::string* err);

} // namespace cascade::fpga

#endif // CASCADE_FPGA_SYNTH_H
