/// \file
/// Tests for the Cascade IR transforms: program splitting with port
/// promotion (Fig. 4) and user-logic inlining (§4.2). Both transforms must
/// produce standalone Verilog that re-elaborates cleanly, and inlined
/// modules must behave identically to the original hierarchy.

#include "ir/subprogram.h"

#include <gtest/gtest.h>

#include "sim/interpreter.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

namespace cascade::ir {
namespace {

using namespace verilog;

/// Parses a multi-module program; returns the library plus the root (the
/// last module in the source).
struct Program {
    ModuleLibrary lib;
    const ModuleDecl* root = nullptr;
};

Program
load(std::string_view src)
{
    Program prog;
    Diagnostics diags;
    SourceUnit unit = parse(src, &diags);
    EXPECT_FALSE(diags.has_errors()) << diags.str();
    EXPECT_FALSE(unit.modules.empty());
    std::string root_name = unit.modules.back()->name;
    for (auto& m : unit.modules) {
        prog.lib.add(std::move(m));
    }
    prog.root = prog.lib.find(root_name);
    return prog;
}

const char* kRunningExample = R"(
    module Rol(input wire [7:0] x, output wire [7:0] y);
      assign y = (x == 8'h80) ? 1 : (x << 1);
    endmodule
    module Main(input wire clk, input wire [3:0] pad,
                output wire [7:0] led);
      reg [7:0] cnt = 1;
      Rol r(.x(cnt));
      always @(posedge clk)
        if (pad == 0)
          cnt <= r.y;
      assign led = cnt;
    endmodule
)";

TEST(Splitter, RunningExampleShape)
{
    Program prog = load(kRunningExample);
    Diagnostics diags;
    auto subs = split_program(*prog.root, prog.lib, {}, &diags);
    ASSERT_EQ(subs.size(), 2u) << diags.str();

    const Subprogram& main = subs[0];
    EXPECT_EQ(main.path, "root");
    EXPECT_EQ(main.module_name, "Main");
    // Original ports plus promoted r_x (output) and r_y (input).
    ASSERT_EQ(main.source->ports.size(), 5u);
    const Port& rx = main.source->ports[3];
    const Port& ry = main.source->ports[4];
    EXPECT_EQ(rx.name, "r_x");
    EXPECT_EQ(rx.dir, PortDir::Output);
    EXPECT_EQ(ry.name, "r_y");
    EXPECT_EQ(ry.dir, PortDir::Input);

    // No instantiations remain; a glue assign drives r_x from cnt.
    for (const auto& item : main.source->items) {
        EXPECT_NE(item->kind, ItemKind::Instantiation);
    }
    const std::string printed = print(*main.source);
    EXPECT_NE(printed.find("assign r_x = cnt;"), std::string::npos)
        << printed;
    EXPECT_NE(printed.find("cnt <= r_y;"), std::string::npos) << printed;
    // No hierarchical names survive.
    EXPECT_EQ(printed.find("r.y"), std::string::npos) << printed;

    const Subprogram& rol = subs[1];
    EXPECT_EQ(rol.path, "root.r");
    EXPECT_EQ(rol.module_name, "Rol");

    // Wiring: main's r_x/r_y bind to the same global nets as rol's x/y.
    auto net_of = [](const Subprogram& s, const std::string& port) {
        for (const auto& b : s.bindings) {
            if (b.port == port) {
                return b.global_net;
            }
        }
        return std::string("<missing>");
    };
    EXPECT_EQ(net_of(main, "r_x"), net_of(rol, "x"));
    EXPECT_EQ(net_of(main, "r_y"), net_of(rol, "y"));
    EXPECT_EQ(net_of(main, "clk"), "root.clk");
}

TEST(Splitter, SubprogramsReElaborateStandalone)
{
    Program prog = load(kRunningExample);
    Diagnostics diags;
    auto subs = split_program(*prog.root, prog.lib, {}, &diags);
    ASSERT_EQ(subs.size(), 2u);
    for (const auto& sub : subs) {
        Diagnostics d2;
        Elaborator elab(&d2); // no library: must be hierarchy-free
        auto em = elab.elaborate(*sub.source, sub.params);
        EXPECT_NE(em, nullptr)
            << sub.path << ":\n" << d2.str() << print(*sub.source);
    }
}

TEST(Splitter, StdlibInstancesMarked)
{
    Program prog = load(R"(
        module Clock(output wire val);
        endmodule
        module Led#(parameter WIDTH = 8)(input wire [WIDTH-1:0] val);
        endmodule
        module Root();
          Clock clk();
          Led#(8) led();
          reg [7:0] cnt = 0;
          always @(posedge clk.val) cnt <= cnt + 1;
          assign led.val = cnt;
        endmodule
    )");
    Diagnostics diags;
    auto subs =
        split_program(*prog.root, prog.lib, {"Clock", "Led"}, &diags);
    ASSERT_EQ(subs.size(), 3u) << diags.str();
    EXPECT_FALSE(subs[0].is_stdlib);
    // Children in map order: clk, led.
    EXPECT_TRUE(subs[1].is_stdlib);
    EXPECT_TRUE(subs[2].is_stdlib);
    EXPECT_EQ(subs[1].path, "root.clk");

    // The root drives led.val procedurally? No: via assign. The promoted
    // port led_val must be an output.
    const std::string printed = print(*subs[0].source);
    EXPECT_NE(printed.find("assign led_val = cnt;"), std::string::npos)
        << printed;
    EXPECT_NE(printed.find("posedge clk_val"), std::string::npos)
        << printed;
}

TEST(Splitter, ParameterOverridesPropagate)
{
    Program prog = load(R"(
        module Width#(parameter N = 1)(output wire [N-1:0] o);
          assign o = {N{1'b1}};
        endmodule
        module Root();
          Width#(12) w();
          wire [11:0] v;
          assign v = w.o;
        endmodule
    )");
    Diagnostics diags;
    auto subs = split_program(*prog.root, prog.lib, {}, &diags);
    ASSERT_EQ(subs.size(), 2u) << diags.str();
    // Promoted input w_o must have the overridden width 12.
    Diagnostics d2;
    Elaborator elab(&d2);
    auto em = elab.elaborate(*subs[0].source, subs[0].params);
    ASSERT_NE(em, nullptr) << d2.str();
    EXPECT_EQ(em->find_net("w_o")->width, 12u);
    // Child subprogram carries the literal override.
    ASSERT_EQ(subs[1].params.size(), 1u);
    Diagnostics d3;
    auto child_em = Elaborator(&d3).elaborate(*subs[1].source,
                                              subs[1].params);
    ASSERT_NE(child_em, nullptr) << d3.str();
    EXPECT_EQ(child_em->params.at("N").to_uint64(), 12u);
}

TEST(Splitter, ThreeLevelHierarchy)
{
    Program prog = load(R"(
        module Leaf(input wire i, output wire o);
          assign o = ~i;
        endmodule
        module Mid(input wire i, output wire o);
          Leaf l(.i(i), .o(o));
        endmodule
        module Root(input wire a, output wire b);
          Mid m(.i(a), .o(b));
        endmodule
    )");
    Diagnostics diags;
    auto subs = split_program(*prog.root, prog.lib, {}, &diags);
    ASSERT_EQ(subs.size(), 3u) << diags.str();
    EXPECT_EQ(subs[0].path, "root");
    EXPECT_EQ(subs[1].path, "root.m");
    EXPECT_EQ(subs[2].path, "root.m.l");
}

TEST(Splitter, NameCollisionAvoided)
{
    Program prog = load(R"(
        module Sub(output wire y);
          assign y = 1;
        endmodule
        module Root(output wire o);
          wire s_y; // collides with the natural promoted name
          Sub s();
          assign s_y = 0;
          assign o = s.y | s_y;
        endmodule
    )");
    Diagnostics diags;
    auto subs = split_program(*prog.root, prog.lib, {}, &diags);
    ASSERT_EQ(subs.size(), 2u) << diags.str();
    Diagnostics d2;
    auto em = Elaborator(&d2).elaborate(*subs[0].source);
    EXPECT_NE(em, nullptr) << d2.str() << print(*subs[0].source);
    EXPECT_NE(em->find_net("_s_y"), nullptr);
}

TEST(Inliner, BehaviorMatchesHierarchy)
{
    Program prog = load(kRunningExample);
    Diagnostics diags;
    auto inlined = inline_hierarchy(*prog.root, prog.lib, {}, &diags);
    ASSERT_NE(inlined, nullptr) << diags.str();

    // No instantiations remain.
    for (const auto& item : inlined->items) {
        EXPECT_NE(item->kind, ItemKind::Instantiation);
    }

    // Elaborate standalone and simulate 8 clock ticks: the LED pattern
    // must rotate exactly as the hierarchical design dictates.
    Diagnostics d2;
    auto em = Elaborator(&d2).elaborate(*inlined);
    ASSERT_NE(em, nullptr) << d2.str() << print(*inlined);
    sim::ModuleInterpreter interp(
        std::shared_ptr<const ElaboratedModule>(std::move(em)), nullptr);
    interp.run_initials();
    auto settle = [&interp] {
        for (int i = 0; i < 64; ++i) {
            interp.evaluate();
            if (!interp.there_are_updates()) {
                return;
            }
            interp.update();
        }
        FAIL() << "did not settle";
    };
    settle();
    EXPECT_EQ(interp.get("led").to_uint64(), 1u);
    for (int t = 0; t < 3; ++t) {
        interp.set_input("clk", BitVector(1, 1));
        settle();
        interp.set_input("clk", BitVector(1, 0));
        settle();
    }
    EXPECT_EQ(interp.get("led").to_uint64(), 8u);
}

TEST(Inliner, ParametersFrozenAsLocalparams)
{
    Program prog = load(R"(
        module Add#(parameter W = 4)(input wire [W-1:0] a,
                                     input wire [W-1:0] b,
                                     output wire [W-1:0] s);
          assign s = a + b;
        endmodule
        module Top(input wire [7:0] x, output wire [7:0] y);
          Add#(.W(8)) add(.a(x), .b(8'd3), .s(y));
        endmodule
    )");
    Diagnostics diags;
    auto inlined = inline_hierarchy(*prog.root, prog.lib, {}, &diags);
    ASSERT_NE(inlined, nullptr) << diags.str();
    Diagnostics d2;
    auto em = Elaborator(&d2).elaborate(*inlined);
    ASSERT_NE(em, nullptr) << d2.str() << print(*inlined);
    EXPECT_EQ(em->params.at("add__W").to_uint64(), 8u);
    EXPECT_EQ(em->find_net("add__a")->width, 8u);
}

TEST(Inliner, TwoInstancesOfSameModule)
{
    Program prog = load(R"(
        module Inv(input wire i, output wire o);
          assign o = ~i;
        endmodule
        module Top(input wire a, output wire b);
          wire mid;
          Inv i1(.i(a), .o(mid));
          Inv i2(.i(mid), .o(b));
        endmodule
    )");
    Diagnostics diags;
    auto inlined = inline_hierarchy(*prog.root, prog.lib, {}, &diags);
    ASSERT_NE(inlined, nullptr) << diags.str();
    Diagnostics d2;
    auto em = Elaborator(&d2).elaborate(*inlined);
    ASSERT_NE(em, nullptr) << d2.str() << print(*inlined);
    sim::ModuleInterpreter interp(
        std::shared_ptr<const ElaboratedModule>(std::move(em)), nullptr);
    interp.run_initials();
    interp.evaluate();
    // Double inversion: b == a.
    interp.set_input("a", BitVector(1, 1));
    interp.evaluate();
    EXPECT_EQ(interp.get("b").to_uint64(), 1u);
    interp.set_input("a", BitVector(1, 0));
    interp.evaluate();
    EXPECT_EQ(interp.get("b").to_uint64(), 0u);
}

TEST(Inliner, NestedHierarchyWithFunctions)
{
    Program prog = load(R"(
        module Leaf(input wire [7:0] x, output wire [7:0] y);
          function [7:0] dbl;
            input [7:0] v;
            dbl = v * 2;
          endfunction
          assign y = dbl(x);
        endmodule
        module Mid(input wire [7:0] x, output wire [7:0] y);
          wire [7:0] t;
          Leaf a(.x(x), .y(t));
          Leaf b(.x(t), .y(y));
        endmodule
        module Top(input wire [7:0] x, output wire [7:0] y);
          Mid m(.x(x), .y(y));
        endmodule
    )");
    Diagnostics diags;
    auto inlined = inline_hierarchy(*prog.root, prog.lib, {}, &diags);
    ASSERT_NE(inlined, nullptr) << diags.str();
    Diagnostics d2;
    auto em = Elaborator(&d2).elaborate(*inlined);
    ASSERT_NE(em, nullptr) << d2.str() << print(*inlined);
    sim::ModuleInterpreter interp(
        std::shared_ptr<const ElaboratedModule>(std::move(em)), nullptr);
    interp.run_initials();
    interp.set_input("x", BitVector(8, 3));
    interp.evaluate();
    EXPECT_EQ(interp.get("y").to_uint64(), 12u);
}

TEST(Inliner, StopsAtStdlibTypes)
{
    Program prog = load(R"(
        module Led(input wire [7:0] val);
        endmodule
        module Blink(input wire clk, output wire [7:0] o);
          reg [7:0] cnt = 0;
          always @(posedge clk) cnt <= cnt + 1;
          Led led();
          assign led.val = cnt;
          assign o = cnt;
        endmodule
        module Top(input wire clk, output wire [7:0] o);
          Blink b(.clk(clk), .o(o));
        endmodule
    )");
    Diagnostics diags;
    auto inlined = inline_hierarchy(*prog.root, prog.lib, {"Led"}, &diags);
    ASSERT_NE(inlined, nullptr) << diags.str();
    int inst_count = 0;
    for (const auto& item : inlined->items) {
        if (item->kind == ItemKind::Instantiation) {
            ++inst_count;
            EXPECT_EQ(static_cast<const Instantiation&>(*item).module_name,
                      "Led");
        }
    }
    EXPECT_EQ(inst_count, 1);
}

} // namespace
} // namespace cascade::ir
