/// \file
/// Elaboration: binds parameters, resolves net declarations to concrete
/// widths, and performs the legality checks that must pass before a module
/// can be simulated or synthesized.
///
/// Cascade elaborates at the granularity of a single module (a subprogram in
/// the distributed-system IR). Hierarchical references (r.y) are legal only
/// when a module library is supplied so the child's ports can be checked;
/// engine-level elaboration runs after the IR transforms have rewritten all
/// hierarchical references into ports, so subprograms elaborate standalone.

#ifndef CASCADE_VERILOG_ELABORATE_H
#define CASCADE_VERILOG_ELABORATE_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "common/diagnostics.h"
#include "verilog/ast.h"

namespace cascade::verilog {

/// A named collection of module declarations (the "program text so far").
class ModuleLibrary {
  public:
    /// Adds (or replaces) a declaration. Returns false if a module of this
    /// name already existed (callers decide whether that is an error).
    bool add(std::unique_ptr<ModuleDecl> decl);

    const ModuleDecl* find(const std::string& name) const;

    /// Removes a declaration (used by the REPL to roll back a failed
    /// eval). Returns true if it existed.
    bool remove(const std::string& name);

    const std::map<std::string, std::unique_ptr<ModuleDecl>>&
    all() const
    {
        return modules_;
    }

  private:
    std::map<std::string, std::unique_ptr<ModuleDecl>> modules_;
};

/// A fully resolved net (wire/reg/port) within an elaborated module.
struct NetInfo {
    std::string name;
    uint32_t width = 1;
    uint32_t lsb = 0;           ///< declared [msb:lsb] low bound
    bool is_signed = false;
    bool is_reg = false;
    bool is_port = false;
    PortDir dir = PortDir::Input;
    uint32_t array_size = 0;    ///< 0 for scalars
    int64_t array_base = 0;     ///< lowest legal element index
    const Expr* init = nullptr; ///< declarator initializer, if any
};

/// A module with all parameters bound and all nets resolved.
struct ElaboratedModule {
    std::string name;
    /// The (cloned) declaration this was elaborated from.
    std::unique_ptr<ModuleDecl> decl;
    /// Final parameter values, including localparams.
    std::unordered_map<std::string, BitVector> params;
    std::unordered_map<std::string, bool> param_signed;
    std::vector<NetInfo> nets;
    std::unordered_map<std::string, uint32_t> net_index;
    std::unordered_map<std::string, const FunctionDecl*> functions;

    const NetInfo* find_net(const std::string& name) const;
    uint32_t net_id(const std::string& name) const;
};

/// Evaluates a constant expression over a parameter environment. Returns
/// std::nullopt (and reports to \p diags) when the expression references
/// anything other than parameters and literals.
std::optional<BitVector>
eval_const_expr(const Expr& expr,
                const std::unordered_map<std::string, BitVector>& env,
                Diagnostics* diags);

class Elaborator {
  public:
    /// \p library may be null; hierarchical references and instantiations
    /// are then rejected (the subprogram/engine case).
    Elaborator(Diagnostics* diags, const ModuleLibrary* library = nullptr);

    /// Elaborates \p decl with the given parameter overrides (positional or
    /// named, as written at an instantiation site). Returns null on error.
    std::unique_ptr<ElaboratedModule>
    elaborate(const ModuleDecl& decl,
              const std::vector<Connection>& param_overrides = {});

  private:
    bool bind_parameters(const ModuleDecl& decl,
                         const std::vector<Connection>& overrides,
                         ElaboratedModule* em);
    bool add_net(const Port& port, ElaboratedModule* em);
    bool add_net(const NetDecl& decl, const NetDeclarator& d,
                 ElaboratedModule* em);
    /// Computes (width, lsb) from an optional range.
    bool resolve_range(const Range& range, const ElaboratedModule& em,
                       uint32_t* width, uint32_t* lsb);
    bool check_items(ElaboratedModule* em);
    bool check_stmt(const Stmt& stmt, const ElaboratedModule& em,
                    bool in_seq_block,
                    const FunctionDecl* enclosing_fn);
    bool check_expr(const Expr& expr, const ElaboratedModule& em,
                    const FunctionDecl* enclosing_fn);
    bool check_lvalue(const Expr& expr, const ElaboratedModule& em,
                      bool procedural, const FunctionDecl* enclosing_fn);
    bool check_instantiation(const Instantiation& inst,
                             const ElaboratedModule& em);

    Diagnostics* diags_;
    const ModuleLibrary* library_;
};

/// Resolves names that live outside the module's net table — function
/// inputs, locals, and return variables during function evaluation or
/// inlining. Width 0 means "not a local".
class LocalScope {
  public:
    virtual ~LocalScope() = default;

    virtual uint32_t local_width(const std::string& name) const = 0;
    virtual bool local_signed(const std::string& name) const = 0;
};

/// Self-determined width and signedness analysis (IEEE 1364 §5.4), shared
/// by the interpreter and the synthesizer. Function calls are typed by the
/// callee's declared return range; identifiers consult \p locals first
/// (function frames) and the module's nets/params second.
class ExprTyper {
  public:
    explicit ExprTyper(const ElaboratedModule& em,
                       const LocalScope* locals = nullptr)
        : em_(em), locals_(locals)
    {}

    /// Self-determined bit width. Unresolvable references count as 1 bit
    /// (elaboration has already reported them).
    uint32_t self_width(const Expr& expr) const;

    /// True if the expression is signed under Verilog's rules (all operands
    /// signed; comparisons, concats, and reductions are unsigned).
    bool is_signed(const Expr& expr) const;

    /// Width of an assignment target.
    uint32_t lvalue_width(const Expr& lhs) const;

  private:
    const ElaboratedModule& em_;
    const LocalScope* locals_;
};

} // namespace cascade::verilog

#endif // CASCADE_VERILOG_ELABORATE_H
