#include "workloads/workloads.h"

#include <cstdint>
#include <cstdio>

namespace cascade::workloads {

namespace {

/// SHA-256 round constants.
constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

std::string
hex32(uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "32'h%08x", v);
    return buf;
}

/// The K-constant lookup function.
std::string
k_function()
{
    std::string out = "function [31:0] kconst;\n  input [5:0] i;\n"
                      "  case (i)\n";
    for (int i = 0; i < 64; ++i) {
        out += "    " + std::to_string(i) + ": kconst = " +
               hex32(kK[i]) + ";\n";
    }
    out += "    default: kconst = 0;\n  endcase\nendfunction\n";
    return out;
}

/// Shared SHA-256 datapath (functions + per-cycle round body). The
/// message block carries the nonce in word 0; the rest is fixed padding,
/// so each nonce yields one compression (64 cycles per candidate).
std::string
sha_core_body(uint32_t target_zero_bits, const std::string& clk,
              bool with_display, bool with_led)
{
    std::string src;
    src += k_function();
    src += R"(
function [31:0] rotr;
  input [31:0] x;
  input [4:0] n;
  rotr = (x >> n) | (x << (32 - n));
endfunction
function [31:0] bsig0;
  input [31:0] x;
  bsig0 = rotr(x, 2) ^ rotr(x, 13) ^ rotr(x, 22);
endfunction
function [31:0] bsig1;
  input [31:0] x;
  bsig1 = rotr(x, 6) ^ rotr(x, 11) ^ rotr(x, 25);
endfunction
function [31:0] ssig0;
  input [31:0] x;
  ssig0 = rotr(x, 7) ^ rotr(x, 18) ^ (x >> 3);
endfunction
function [31:0] ssig1;
  input [31:0] x;
  ssig1 = rotr(x, 17) ^ rotr(x, 19) ^ (x >> 10);
endfunction
function [31:0] chf;
  input [31:0] e, f, g;
  chf = (e & f) ^ (~e & g);
endfunction
function [31:0] majf;
  input [31:0] a, b, c;
  majf = (a & b) ^ (a & c) ^ (b & c);
endfunction
function [31:0] msg;
  input [3:0] i;
  case (i)
    1: msg = 32'h80000000; // padding start
    15: msg = 32'd32;      // message length
    default: msg = 0;
  endcase
endfunction

reg [31:0] ha = 32'h6a09e667, hb = 32'hbb67ae85;
reg [31:0] hc = 32'h3c6ef372, hd = 32'ha54ff53a;
reg [31:0] he = 32'h510e527f, hf = 32'h9b05688c;
reg [31:0] hg = 32'h1f83d9ab, hh = 32'h5be0cd19;
reg [31:0] w [0:15];
reg [5:0] round = 0;
reg [31:0] nonce = 0;
reg [31:0] hits = 0;
wire [31:0] wcur;
wire [31:0] t1;
wire [31:0] t2;
wire [31:0] final_a;
wire found;
assign wcur = (round < 16)
    ? ((round == 0) ? nonce : msg(round[3:0]))
    : (ssig1(w[(round + 14) & 15]) + w[(round + 9) & 15] +
       ssig0(w[(round + 1) & 15]) + w[round & 15]);
assign t1 = hh + bsig1(he) + chf(he, hf, hg) + kconst(round) + wcur;
assign t2 = bsig0(ha) + majf(ha, hb, hc);
assign final_a = ha + t1 + t2 + 32'h6a09e667;
)";
    src += "assign found = (round == 63) && ((final_a >> (32 - " +
           std::to_string(target_zero_bits) + ")) == 0);\n";
    src += "always @(posedge " + clk + ") begin\n"
           "  w[round & 15] <= wcur;\n"
           "  if (round == 63) begin\n"
           "    if (found) begin\n"
           "      hits <= hits + 1;\n";
    if (with_display) {
        src += "      $display(\"nonce %h -> hash %h\", nonce, final_a);\n";
    }
    src += R"(    end
    nonce <= nonce + 1;
    round <= 0;
    ha <= 32'h6a09e667; hb <= 32'hbb67ae85;
    hc <= 32'h3c6ef372; hd <= 32'ha54ff53a;
    he <= 32'h510e527f; hf <= 32'h9b05688c;
    hg <= 32'h1f83d9ab; hh <= 32'h5be0cd19;
  end else begin
    round <= round + 1;
    hh <= hg; hg <= hf; hf <= he;
    he <= hd + t1;
    hd <= hc; hc <= hb; hb <= ha;
    ha <= t1 + t2;
  end
end
)";
    if (with_led) {
        src += "assign led.val = hits[7:0];\n";
    }
    return src;
}

/// DFA body for "GET /[a-z]+ " over one byte per cycle.
std::string
regex_dfa_body(const std::string& byte_expr, const std::string& valid_expr,
               const std::string& clk, bool with_display)
{
    std::string src = R"(
reg [2:0] state = 0;
reg [31:0] hits = 0;
reg [31:0] consumed = 0;
wire [7:0] ch;
wire lower;
)";
    src += "assign ch = " + byte_expr + ";\n";
    src += "assign lower = (ch >= 8'h61) && (ch <= 8'h7a);\n";
    src += "always @(posedge " + clk + ")\n";
    src += "  if (" + valid_expr + ") begin\n";
    src += R"(    consumed <= consumed + 1;
    case (state)
      0: state <= (ch == 8'h47) ? 1 : 0;
      1: state <= (ch == 8'h45) ? 2 : ((ch == 8'h47) ? 1 : 0);
      2: state <= (ch == 8'h54) ? 3 : ((ch == 8'h47) ? 1 : 0);
      3: state <= (ch == 8'h20) ? 4 : ((ch == 8'h47) ? 1 : 0);
      4: state <= (ch == 8'h2f) ? 5 : ((ch == 8'h47) ? 1 : 0);
      5: state <= lower ? 6 : ((ch == 8'h47) ? 1 : 0);
      6:
        if (ch == 8'h20) begin
          hits <= hits + 1;
)";
    if (with_display) {
        src += "          $display(\"match %0d at byte %0d\", hits + 1, "
               "consumed);\n";
    }
    src += R"(          state <= 0;
        end else
          state <= lower ? 6 : ((ch == 8'h47) ? 1 : 0);
      default: state <= 0;
    endcase
  end
)";
    return src;
}

} // namespace

std::string
proof_of_work_source(uint32_t target_zero_bits, bool with_display)
{
    std::string src = "Led#(8) led();\n";
    src += sha_core_body(target_zero_bits, "clk.val", with_display,
                         /*with_led=*/true);
    return src;
}

std::string
proof_of_work_module(uint32_t target_zero_bits)
{
    std::string src =
        "module Pow(input wire clk, output wire [7:0] led_val);\n";
    std::string body = sha_core_body(target_zero_bits, "clk",
                                     /*with_display=*/false,
                                     /*with_led=*/false);
    src += body;
    src += "assign led_val = hits[7:0];\n";
    src += "endmodule\n";
    return src;
}

std::string
regex_stream_source(bool with_display)
{
    std::string src = R"(
Led#(8) led();
wire [7:0] fdata;
wire fempty;
wire ren;
FIFO#(8, 8) f(.clk(clk.val), .rreq(ren), .rdata(fdata),
              .empty(fempty));
assign ren = !fempty;
)";
    src += regex_dfa_body("fdata", "!fempty", "clk.val", with_display);
    src += "assign led.val = hits[7:0];\n";
    return src;
}

std::string
regex_stream_module()
{
    std::string src = "module Regex(input wire clk, input wire [7:0] din,\n"
                      "             input wire din_valid,\n"
                      "             output wire [31:0] nhits);\n";
    src += regex_dfa_body("din", "din_valid", "clk",
                          /*with_display=*/false);
    src += "assign nhits = hits;\nendmodule\n";
    return src;
}

std::string
needleman_wunsch_source(uint32_t n, int style)
{
    const uint32_t dim = n + 1;
    std::string src;
    src += "// Needleman-Wunsch, " + std::to_string(n) + "-symbol "
           "sequences, one cell per cycle\n";
    src += "reg [1:0] seqa [0:" + std::to_string(n - 1) + "];\n";
    src += "reg [1:0] seqb [0:" + std::to_string(n - 1) + "];\n";
    src += "reg signed [15:0] m [0:" + std::to_string(dim * dim - 1) +
           "];\n";
    src += "reg [15:0] i = 0;\nreg [15:0] j = 0;\nreg phase = 0;\n";
    src += "integer t;\n";
    // Deterministic pseudo-random sequences.
    src += "initial begin\n";
    src += "  for (t = 0; t < " + std::to_string(n) + "; t = t + 1) begin\n";
    src += "    seqa[t] = (t * 7 + 3) % 4;\n";
    src += "    seqb[t] = (t * 5 + 1) % 4;\n";
    src += "  end\nend\n";

    if (style == 2) {
        src += R"(
function signed [15:0] max2;
  input signed [15:0] a, b;
  max2 = (a >= b) ? a : b;
endfunction
function signed [15:0] cell_score;
  input signed [15:0] diag, up, left;
  input [1:0] ca, cb;
  cell_score = max2(diag + ((ca == cb) ? 16'sd2 : -16'sd1),
                    max2(up - 16'sd1, left - 16'sd1));
endfunction
)";
    }

    src += "wire signed [15:0] sdiag;\nwire signed [15:0] sup;\n"
           "wire signed [15:0] sleft;\nwire signed [15:0] best;\n";
    const std::string d = std::to_string(dim);
    src += "assign sdiag = m[(i-1)*" + d + "+(j-1)] + "
           "((seqa[i-1] == seqb[j-1]) ? 16'sd2 : -16'sd1);\n";
    src += "assign sup = m[(i-1)*" + d + "+j] - 16'sd1;\n";
    src += "assign sleft = m[i*" + d + "+(j-1)] - 16'sd1;\n";
    if (style == 2) {
        src += "assign best = cell_score(m[(i-1)*" + d + "+(j-1)], "
               "m[(i-1)*" + d + "+j], m[i*" + d + "+(j-1)], "
               "seqa[i-1], seqb[j-1]);\n";
    } else {
        src += "assign best = (sdiag >= sup) ? "
               "((sdiag >= sleft) ? sdiag : sleft) : "
               "((sup >= sleft) ? sup : sleft);\n";
    }

    src += "always @(posedge clk.val)\n";
    src += "  if (phase == 0) begin\n";
    src += "    // border initialization, one cell per cycle\n";
    src += "    m[i*" + d + "+j] <= (i == 0) ? -$signed(j) : "
           "-$signed(i);\n";
    src += "    if (i == 0 && j < " + std::to_string(n) + ")\n";
    src += "      j <= j + 1;\n";
    src += "    else if (i == 0) begin\n";
    src += "      i <= 1; j <= 0;\n";
    src += "    end else if (i < " + std::to_string(n) + ")\n";
    src += "      i <= i + 1;\n";
    src += "    else begin\n";
    src += "      phase <= 1; i <= 1; j <= 1;\n";
    src += "    end\n";
    src += "  end else begin\n";
    src += "    m[i*" + d + "+j] <= best;\n";
    if (style == 1) {
        src += "    $display(\"cell %0d %0d = %0d\", i, j, best);\n";
    }
    src += "    if (j < " + std::to_string(n) + ")\n";
    src += "      j <= j + 1;\n";
    src += "    else if (i < " + std::to_string(n) + ") begin\n";
    src += "      i <= i + 1; j <= 1;\n";
    src += "    end else begin\n";
    src += "      $display(\"score = %0d\", best);\n";
    src += "      $finish;\n";
    src += "    end\n";
    src += "  end\n";
    return src;
}

} // namespace cascade::workloads
