/// \file
/// The metrics half of the observability subsystem: named monotonic
/// counters, gauges (with high-water marks), and log2-bucketed histograms,
/// grouped into a Registry. Hot-path mutation is a single relaxed atomic
/// RMW — callers look a metric up once (taking the registry lock) and then
/// increment through the returned pointer, which stays valid for the
/// registry's lifetime.
///
/// Two registries matter in practice: the process-wide singleton
/// (Registry::global()), used by layers with no Runtime handle (the
/// compile flow on the compile-server thread, the interpreter), and one
/// per-Runtime instance exposed through Runtime::telemetry(), which scopes
/// scheduler/engine metrics to that runtime. See README.md §Observability
/// for the metric catalogue.

#ifndef CASCADE_TELEMETRY_TELEMETRY_H
#define CASCADE_TELEMETRY_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cascade::telemetry {

/// Monotonic counter. inc() is lock-free.
class Counter {
  public:
    void
    inc(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /// Zeroes the counter (measurement-window bracketing; see
    /// Registry::reset).
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/// Instantaneous level plus the high-water mark it ever reached.
/// set()/add() are lock-free.
class Gauge {
  public:
    void
    set(int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
        raise_high_water(v);
    }

    void
    add(int64_t delta)
    {
        const int64_t v =
            value_.fetch_add(delta, std::memory_order_relaxed) + delta;
        raise_high_water(v);
    }

    int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    int64_t
    high_water() const
    {
        return high_water_.load(std::memory_order_relaxed);
    }

    /// Zeroes both the level and the high-water mark.
    void
    reset()
    {
        value_.store(0, std::memory_order_relaxed);
        high_water_.store(0, std::memory_order_relaxed);
    }

  private:
    void
    raise_high_water(int64_t v)
    {
        int64_t cur = high_water_.load(std::memory_order_relaxed);
        while (v > cur &&
               !high_water_.compare_exchange_weak(
                   cur, v, std::memory_order_relaxed)) {
        }
    }

    std::atomic<int64_t> value_{0};
    std::atomic<int64_t> high_water_{0};
};

/// Log-scale histogram of uint64 samples (typically nanoseconds or batch
/// sizes). Bucket b holds samples whose bit width is b, i.e. values in
/// [2^(b-1), 2^b); bucket 0 holds zero. record() is lock-free.
class Histogram {
  public:
    static constexpr int kBuckets = 65;

    void record(uint64_t value);

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    uint64_t min() const; ///< 0 when empty
    uint64_t max() const;
    double mean() const;
    uint64_t bucket(int b) const;
    /// Estimated value at quantile \p q in [0,1] (geometric bucket
    /// midpoint; exact for min/max at the extremes).
    uint64_t quantile(double q) const;

    /// Drops every recorded sample.
    void reset();

  private:
    std::atomic<uint64_t> buckets_[kBuckets] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> min_{UINT64_MAX};
    std::atomic<uint64_t> max_{0};
};

/// Name -> metric map. Lookup/creation takes a mutex; returned pointers
/// are stable for the registry's lifetime, so hot paths resolve once and
/// cache. A name identifies exactly one kind of metric per registry.
class Registry {
  public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// The process-wide registry (compiler flow, interpreter internals).
    static Registry& global();

    Counter* counter(const std::string& name);
    Gauge* gauge(const std::string& name);
    Histogram* histogram(const std::string& name);

    /// Pretty fixed-width table of every metric, one per line, sorted by
    /// name (the REPL's :stats view).
    std::string table() const;

    /// The registry as a JSON object:
    /// {"counters":{...},"gauges":{name:{"value":..,"high_water":..}},
    ///  "histograms":{name:{"count":..,"sum":..,"min":..,"max":..,
    ///                      "mean":..,"p50":..,"p90":..,"p99":..}}}
    std::string json() const;

    /// Zeroes every registered metric in place. Pointers handed out by
    /// counter()/gauge()/histogram() stay valid (hot paths cache them),
    /// so callers can bracket a measurement window without restarting.
    void reset();

    /// Point-in-time copy of every metric, sorted by name — what exporters
    /// (the Prometheus renderer, the time-series sampler) iterate without
    /// holding the registry lock while formatting.
    struct Snapshot {
        struct GaugeValue {
            int64_t value;
            int64_t high_water;
        };
        struct HistogramValue {
            uint64_t count;
            uint64_t sum;
            uint64_t min;
            uint64_t max;
            double mean;
            uint64_t p50;
            uint64_t p90;
            uint64_t p99;
        };
        std::vector<std::pair<std::string, uint64_t>> counters;
        std::vector<std::pair<std::string, GaugeValue>> gauges;
        std::vector<std::pair<std::string, HistogramValue>> histograms;
    };
    Snapshot snapshot() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Escapes a string for embedding in JSON (quotes not included).
std::string json_escape(const std::string& s);

} // namespace cascade::telemetry

#endif // CASCADE_TELEMETRY_TELEMETRY_H
