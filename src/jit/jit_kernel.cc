#include "jit/jit_kernel.h"

#include <algorithm>

#include "common/check.h"
#include "jit/codegen.h"

namespace cascade::jit {

namespace {

uint32_t
words_of(uint32_t width)
{
    return (width + 63) / 64;
}

} // namespace

std::unique_ptr<JitKernel>
JitKernel::create(std::shared_ptr<const fpga::Netlist> nl,
                  std::string* error, std::string* digest_out,
                  bool* cache_hit)
{
    CASCADE_CHECK(nl != nullptr);
    const std::string source = generate_source(*nl);
    std::string digest;
    const JitModule* mod = build_module(source, &digest, cache_hit, error);
    if (digest_out != nullptr) {
        *digest_out = digest;
    }
    if (mod == nullptr) {
        return nullptr;
    }
    void* state = mod->create();
    if (state == nullptr) {
        *error = "jit kernel instantiation failed";
        return nullptr;
    }
    return std::unique_ptr<JitKernel>(
        new JitKernel(std::move(nl), mod, state, digest));
}

JitKernel::JitKernel(std::shared_ptr<const fpga::Netlist> nl,
                     const JitModule* mod, void* state, std::string digest)
    : nl_(std::move(nl)), mod_(mod), state_(state),
      digest_(std::move(digest))
{
    uint32_t maxw = 1;
    for (size_t i = 0; i < nl_->inputs.size(); ++i) {
        input_index_[nl_->inputs[i].name] = static_cast<int>(i);
        maxw = std::max(maxw, words_of(nl_->inputs[i].width));
    }
    out_cache_.reserve(nl_->outputs.size());
    for (size_t i = 0; i < nl_->outputs.size(); ++i) {
        output_index_[nl_->outputs[i].name] = static_cast<int>(i);
        const uint32_t w = nl_->nodes[nl_->outputs[i].node].width;
        out_cache_.emplace_back(w, 0);
        maxw = std::max(maxw, words_of(w));
    }
    reg_cache_.reserve(nl_->regs.size());
    for (size_t i = 0; i < nl_->regs.size(); ++i) {
        reg_index_[nl_->regs[i].name] = static_cast<uint32_t>(i);
        reg_cache_.emplace_back(nl_->regs[i].width, 0);
        maxw = std::max(maxw, words_of(nl_->regs[i].width));
    }
    for (size_t i = 0; i < nl_->mems.size(); ++i) {
        mem_index_[nl_->mems[i].name] = static_cast<uint32_t>(i);
        maxw = std::max(maxw, words_of(nl_->mems[i].width));
    }
    scratch_.resize(maxw);
}

JitKernel::~JitKernel()
{
    mod_->destroy(state_);
}

int
JitKernel::input_index(const std::string& name) const
{
    const auto it = input_index_.find(name);
    return it == input_index_.end() ? -1 : it->second;
}

int
JitKernel::output_index(const std::string& name) const
{
    const auto it = output_index_.find(name);
    return it == output_index_.end() ? -1 : it->second;
}

void
JitKernel::set_input(const std::string& name, const BitVector& value)
{
    const int i = input_index(name);
    CASCADE_CHECK(i >= 0);
    set_input(i, value);
}

void
JitKernel::set_input(int index, const BitVector& value)
{
    const fpga::PortDef& port = nl_->inputs[static_cast<size_t>(index)];
    const uint32_t nw = words_of(port.width);
    for (uint32_t k = 0; k < nw; ++k) {
        scratch_[k] = k < value.num_words() ? value.word(k) : 0;
    }
    // The kernel masks the top word, matching value.resized(port.width).
    mod_->set_input(state_, static_cast<uint32_t>(index), scratch_.data());
}

const BitVector&
JitKernel::output(const std::string& name) const
{
    const int i = output_index(name);
    CASCADE_CHECK(i >= 0);
    return output(i);
}

const BitVector&
JitKernel::output(int index) const
{
    mod_->get_output(state_, static_cast<uint32_t>(index),
                     scratch_.data());
    BitVector& out = out_cache_[static_cast<size_t>(index)];
    for (uint32_t k = 0; k < out.num_words(); ++k) {
        out.set_word(k, scratch_[k]);
    }
    return out;
}

const BitVector&
JitKernel::reg_value(const std::string& name) const
{
    const uint32_t r = reg_index_.at(name);
    mod_->get_reg(state_, r, scratch_.data());
    BitVector& out = reg_cache_[r];
    for (uint32_t k = 0; k < out.num_words(); ++k) {
        out.set_word(k, scratch_[k]);
    }
    return out;
}

void
JitKernel::set_reg(const std::string& name, const BitVector& value)
{
    const uint32_t r = reg_index_.at(name);
    const uint32_t nw = words_of(nl_->regs[r].width);
    for (uint32_t k = 0; k < nw; ++k) {
        scratch_[k] = k < value.num_words() ? value.word(k) : 0;
    }
    mod_->set_reg(state_, r, scratch_.data());
}

const BitVector&
JitKernel::mem_value(const std::string& name, uint64_t idx) const
{
    const uint32_t m = mem_index_.at(name);
    CASCADE_CHECK(idx < nl_->mems[m].size);
    mod_->get_mem(state_, m, idx, scratch_.data());
    BitVector& out =
        mem_cache_
            .emplace(std::make_pair(m, idx),
                     BitVector(nl_->mems[m].width, 0))
            .first->second;
    for (uint32_t k = 0; k < out.num_words(); ++k) {
        out.set_word(k, scratch_[k]);
    }
    return out;
}

void
JitKernel::set_mem(const std::string& name, uint64_t idx,
                   const BitVector& value)
{
    const uint32_t m = mem_index_.at(name);
    CASCADE_CHECK(idx < nl_->mems[m].size);
    const uint32_t nw = words_of(nl_->mems[m].width);
    for (uint32_t k = 0; k < nw; ++k) {
        scratch_[k] = k < value.num_words() ? value.word(k) : 0;
    }
    mod_->set_mem(state_, m, idx, scratch_.data());
}

uint64_t
JitKernel::latch_count(const std::string& name) const
{
    const auto it = reg_index_.find(name);
    return it == reg_index_.end() ? 0
                                  : mod_->latch_count(state_, it->second);
}

} // namespace cascade::jit
