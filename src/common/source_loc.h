/// \file
/// Source locations for diagnostics. Every token and AST node carries one so
/// that errors in REPL input can be reported with line/column precision.

#ifndef CASCADE_COMMON_SOURCE_LOC_H
#define CASCADE_COMMON_SOURCE_LOC_H

#include <cstdint>
#include <string>

namespace cascade {

/// A position in a source buffer. Lines and columns are 1-based; a value of
/// zero means "unknown" (e.g. synthesized AST nodes).
struct SourceLoc {
    uint32_t line = 0;
    uint32_t column = 0;

    bool valid() const { return line != 0; }

    std::string
    str() const
    {
        if (!valid()) {
            return "<unknown>";
        }
        return std::to_string(line) + ":" + std::to_string(column);
    }

    bool operator==(const SourceLoc&) const = default;
};

} // namespace cascade

#endif // CASCADE_COMMON_SOURCE_LOC_H
